package faults

import (
	"context"
	"fmt"
	"sync"

	"sweepsched/internal/comm"
	"sweepsched/internal/lb"
	"sweepsched/internal/obs"
	"sweepsched/internal/sched"
	"sweepsched/internal/verify"
)

// Compute produces the angular flux of one task from its averaged upwind
// inflow. The transport solver supplies the cell-balance closure; the
// machine simulator supplies a constant (it only tracks dependencies).
// Compute must be a pure function of (task, inflow) and state that is
// constant within one sweep, so that replayed tasks reproduce their values
// bitwise.
type Compute func(t sched.TaskID, inflow float64) float64

// RecoveryReport accounts for one fault-injected execution. With a fixed
// plan it is identical byte-for-byte (via String) across runs and
// GOMAXPROCS settings: every field is accumulated in barrier order or
// per-processor, never in goroutine-arrival order.
type RecoveryReport struct {
	Seed uint64
	// Faults actually applied (planned events whose step or message never
	// occurred do not count).
	Crashes, Drops, Delays, Duplicates int
	Epochs                             int // executor epochs (1 = fault-free)
	Recoveries                         int // checkpoint + reschedule cycles
	TasksReplayed                      int // completions lost to crashes and re-executed
	StepsExecuted                      int // global barrier steps run
	StepsFaultFree                     int // steps the fault-free schedule would take
	MessagesSent                       int64
	CommRounds                         int64 // Σ_step max_p messages sent by p
	DeadProcs                          []int32
	// LastResidualBound is the load lower bound (lb.ResidualLoad) of the
	// most recent residual reschedule; the residual makespan actually paid
	// can be read off the step counts.
	LastResidualBound int
}

// Penalty is the barrier-step overhead versus the fault-free execution.
func (r *RecoveryReport) Penalty() int { return r.StepsExecuted - r.StepsFaultFree }

// String renders the report deterministically.
func (r *RecoveryReport) String() string {
	return fmt.Sprintf("recovery: seed=%#x faults{crash=%d drop=%d delay=%d dup=%d} epochs=%d recoveries=%d replayed=%d steps=%d faultfree=%d penalty=%d msgs=%d rounds=%d dead=%v residual_bound=%d",
		r.Seed, r.Crashes, r.Drops, r.Delays, r.Duplicates, r.Epochs, r.Recoveries,
		r.TasksReplayed, r.StepsExecuted, r.StepsFaultFree, r.Penalty(),
		r.MessagesSent, r.CommRounds, r.DeadProcs, r.LastResidualBound)
}

// Engine executes sweeps of a schedule on the simulated distributed
// machine (one goroutine per live processor, channel interconnect,
// barrier-synchronous steps) under an injected fault plan. It is stateful
// across sweeps — crashed processors stay dead, and the recovered
// assignment and schedule persist — so the transport solver can run its
// source iteration through one engine.
//
// Execution proceeds in epochs. An epoch runs the current (residual)
// schedule until it finishes, a planned crash fires, or a worker stalls on
// a flux the injector withheld. Ending an epoch durably checkpoints every
// completed task except those the crashed processor finished since the
// last periodic checkpoint (those are lost and replayed); recovery is
// delegated to the shared Recovery core — orphan-cell reassignment onto
// the least-loaded survivors and residual list scheduling
// (sched.ListScheduleResidual) — the same core internal/procrun drives
// for real kill -9'd worker processes.
type Engine struct {
	inst *sched.Instance
	orig *sched.Schedule
	cur  *sched.Schedule
	inj  *Injector
	rec  *Recovery

	sinceCkpt   [][]sched.TaskID // per proc: completions since the last durable checkpoint
	lastCkpt    int32
	ckptEvery   int32
	globalStep  int32
	needRebuild bool
	report      RecoveryReport

	// noBatch selects the frozen per-message interconnect (one channel
	// delivery per logical cross message) instead of the deadline-driven
	// envelope path. Both converge bitwise-identically with identical
	// RecoveryReports; NoBatch is the differential oracle.
	noBatch bool
	// commBatches/commBytes accumulate physical transmissions on the
	// batched path (the unbatched equivalents are derived from
	// MessagesSent); see CommTraffic.
	commBatches, commBytes int64

	// col receives execution counters (nil = off).
	col *obs.Collector
}

// SetNoBatch selects the per-message oracle interconnect (true) or the
// batched envelopes (false, the default). Toggle before the first Sweep.
func (e *Engine) SetNoBatch(on bool) { e.noBatch = on }

// CommTraffic reports the engine's accumulated observed communication:
// logical messages and barrier rounds (also in the RecoveryReport), plus
// the physical transmissions and wire(-model) bytes that carried them —
// envelopes when batching, one frame per message on the oracle path.
func (e *Engine) CommTraffic() (messages, batches, bytes, rounds int64) {
	messages = e.report.MessagesSent
	rounds = e.report.CommRounds
	if e.noBatch {
		return messages, messages, comm.PerMessageWireBytes(int(messages)), rounds
	}
	return messages, e.commBatches, e.commBytes, rounds
}

// Observe attaches a stats collector: the engine reports epochs,
// recoveries, replays and live processors, and the workspace forwards
// the sched.* kernel series for the residual reschedules. A nil
// collector detaches.
func (e *Engine) Observe(col *obs.Collector) {
	e.col = col
	e.rec.Observe(col)
}

// SetVerify toggles auditing of every recovery reschedule with
// verify.Residual (a failed audit aborts the sweep with its diagnostic).
// Defaults to off unless SWEEPSCHED_VERIFY forces it.
func (e *Engine) SetVerify(on bool) { e.rec.SetVerify(on) }

// Audit cross-checks the engine's accumulated accounting for internal
// consistency (verify.Recovery). Call it after the run completes.
func (e *Engine) Audit() error {
	r := e.Report()
	return verify.Recovery(verify.RecoveryStats{
		Procs:   e.inst.M,
		Crashes: r.Crashes, Drops: r.Drops, Delays: r.Delays, Duplicates: r.Duplicates,
		Epochs: r.Epochs, Recoveries: r.Recoveries, TasksReplayed: r.TasksReplayed,
		StepsExecuted: r.StepsExecuted, StepsFaultFree: r.StepsFaultFree,
		MessagesSent: r.MessagesSent, CommRounds: r.CommRounds,
		DeadProcs: r.DeadProcs,
	})
}

// NewEngine prepares a fault-injected executor for the schedule. plan may
// be nil (no faults). The schedule must be feasible; infeasibility is
// detected during execution and reported as an error.
func NewEngine(s *sched.Schedule, plan *Plan) (*Engine, error) {
	rec, err := NewRecovery(s)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		inst:      s.Inst,
		orig:      s,
		cur:       s,
		inj:       NewInjector(plan),
		rec:       rec,
		sinceCkpt: make([][]sched.TaskID, s.Inst.M),
		ckptEvery: Spec{}.withDefaults().CheckpointEvery,
	}
	if plan != nil {
		e.report.Seed = plan.Seed
		e.ckptEvery = plan.Spec.withDefaults().CheckpointEvery
	}
	return e, nil
}

// Report returns a snapshot of the execution accounting.
func (e *Engine) Report() *RecoveryReport {
	r := e.report
	r.Crashes = e.inj.Applied(Crash)
	r.Drops = e.inj.Applied(Drop)
	r.Delays = e.inj.Applied(Delay)
	r.Duplicates = e.inj.Applied(Duplicate)
	r.DeadProcs = e.rec.Dead()
	return &r
}

// Sweep executes every task exactly once (replays excepted), writing each
// task's flux into psi (indexed like the schedule's tasks), recovering
// from injected faults as needed. It returns ctx.Err() promptly on
// cancellation, an *UnrecoverableError once every processor has crashed
// with work outstanding, or a descriptive error for infeasible schedules.
func (e *Engine) Sweep(ctx context.Context, compute Compute, psi []float64) error {
	nt := e.inst.NTasks()
	if len(psi) != nt {
		return fmt.Errorf("faults: psi has %d entries for %d tasks", len(psi), nt)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if e.needRebuild {
		full, err := e.rec.RebuildFull()
		if err != nil {
			return err
		}
		e.cur = full
		e.needRebuild = false
	}
	e.report.StepsFaultFree += e.orig.Makespan

	done := make([]bool, nt)
	remaining := nt
	cur := e.cur
	for remaining > 0 {
		if e.rec.NLive() == 0 {
			return &UnrecoverableError{DeadProcs: e.Report().DeadProcs, Remaining: remaining}
		}
		var reason epochEnd
		var err error
		remaining, reason, err = e.runEpoch(ctx, cur, done, compute, psi, remaining)
		if err != nil {
			return err
		}
		if remaining == 0 {
			break
		}
		switch reason {
		case endCompleted:
			return fmt.Errorf("faults: internal: epoch completed with %d tasks remaining", remaining)
		case endCrash, endStall:
			if e.rec.NLive() == 0 {
				return &UnrecoverableError{DeadProcs: e.Report().DeadProcs, Remaining: remaining}
			}
			e.report.Recoveries++
			e.col.Counter("faults.recoveries").Inc()
			e.report.LastResidualBound = lb.ResidualLoad(remaining, e.rec.NLive())
			resid, err := e.rec.Reschedule(done)
			if err != nil {
				return err
			}
			cur = resid
		}
	}
	return nil
}

type epochEnd uint8

const (
	endCompleted epochEnd = iota
	endCrash
	endStall
)

type stepMsg struct{ local, global int32 }

type workerAck struct {
	proc      int32
	completed []sched.TaskID
	sent      int32
	stalled   bool
	stallTask sched.TaskID // the task that could not run
	stallMiss sched.TaskID // the upwind flux it is missing
	err       error
}

// runEpoch executes the schedule's not-done tasks barrier-synchronously
// until completion, a crash, or a stall. It owns the worker goroutines for
// the epoch and always tears them down before returning (no leaks on any
// path, including cancellation). The default interconnect is the batched
// envelope path; SetNoBatch(true) selects the per-message oracle.
func (e *Engine) runEpoch(ctx context.Context, cur *sched.Schedule, done []bool,
	compute Compute, psi []float64, remaining int) (int, epochEnd, error) {
	if e.noBatch {
		return e.runEpochUnbatched(ctx, cur, done, compute, psi, remaining)
	}
	return e.runEpochBatched(ctx, cur, done, compute, psi, remaining)
}

// runEpochUnbatched is the per-message interconnect: every cross-processor
// flux is one channel delivery the moment the injector releases it. Kept
// verbatim as the differential oracle for the batched path.
func (e *Engine) runEpochUnbatched(ctx context.Context, cur *sched.Schedule, done []bool,
	compute Compute, psi []float64, remaining int) (int, epochEnd, error) {

	e.report.Epochs++
	e.col.Counter("faults.epochs").Inc()
	e.col.Gauge("faults.live_procs").Set(int64(e.rec.NLive()))
	inst := e.inst
	m := inst.M
	assign := e.rec.Assign()

	// Group the epoch's tasks per (processor, local step) and size inboxes:
	// exact cross-message counts (shared barrier-executor helpers) plus
	// slack for duplicated and re-delivered (delayed) messages, so channel
	// sends never block.
	byStep, err := sched.GroupSteps(cur, assign, done)
	if err != nil {
		return remaining, endCompleted, fmt.Errorf("faults: internal: %w", err)
	}
	crossIn := sched.CrossIncoming(inst, assign, done)
	slack := 2
	if e.inj.plan != nil {
		slack += 2 * len(e.inj.plan.Events)
	}
	inbox := make([]chan Delivery, m)
	for p := range inbox {
		inbox[p] = make(chan Delivery, crossIn[p]+slack)
	}
	doneStart := append([]bool(nil), done...)
	ctr := comm.NewCounters(e.col)

	var spawned []int32
	stepCh := make([]chan stepMsg, m)
	reports := make(chan workerAck, m)
	var wg sync.WaitGroup
	for p := int32(0); p < int32(m); p++ {
		if !e.rec.Live(p) {
			continue
		}
		stepCh[p] = make(chan stepMsg)
		spawned = append(spawned, p)
		wg.Add(1)
		go func(p int32) {
			defer wg.Done()
			e.worker(p, byStep[p], doneStart, inbox, stepCh[p], reports, compute, psi)
		}(p)
	}
	teardown := func() {
		for _, p := range spawned {
			close(stepCh[p])
		}
		wg.Wait()
		e.inj.DiscardDelayed()
	}

	for ls := int32(0); ls < int32(cur.Makespan); ls++ {
		g := e.globalStep
		// Planned crashes due at this barrier fire before the step runs:
		// the processor completes steps strictly before its crash step.
		var dying []int32
		for _, p := range spawned {
			if cs := e.inj.CrashStep(p); cs >= 0 && cs <= g {
				dying = append(dying, p)
			}
		}
		if len(dying) > 0 {
			teardown()
			remaining = e.applyCrashes(dying, done, remaining)
			return remaining, endCrash, nil
		}
		// Periodic durable checkpoint: completions up to here can no longer
		// be lost to a crash.
		if g-e.lastCkpt >= e.ckptEvery {
			for p := range e.sinceCkpt {
				e.sinceCkpt[p] = e.sinceCkpt[p][:0]
			}
			e.lastCkpt = g
		}
		// Held (delayed) messages that matured are delivered before the
		// barrier opens.
		for _, dl := range e.inj.Matured(g) {
			if e.rec.Live(dl.To) {
				inbox[dl.To] <- dl
			}
		}
		for _, p := range spawned {
			select {
			case stepCh[p] <- stepMsg{local: ls, global: g}:
			case <-ctx.Done():
				teardown()
				return remaining, endCompleted, ctx.Err()
			}
		}
		var stepMax int32
		var feasErr error
		feasProc := int32(-1)
		stalled := false
		unexplained := false
		stallTask, stallMiss := sched.TaskID(-1), sched.TaskID(-1)
		for range spawned {
			select {
			case a := <-reports:
				for _, t := range a.completed {
					done[t] = true
					remaining--
					e.sinceCkpt[a.proc] = append(e.sinceCkpt[a.proc], t)
				}
				e.report.MessagesSent += int64(a.sent)
				ctr.Logical(int(a.sent))
				ctr.PerMessage(int(a.sent))
				if a.sent > stepMax {
					stepMax = a.sent
				}
				if a.err != nil && (feasProc < 0 || a.proc < feasProc) {
					feasErr, feasProc = a.err, a.proc
				}
				if a.stalled {
					stalled = true
					if stallTask < 0 || a.stallTask < stallTask {
						stallTask, stallMiss = a.stallTask, a.stallMiss
					}
					if !e.inj.Explains(a.stallMiss, a.proc) {
						unexplained = true
					}
				}
			case <-ctx.Done():
				teardown()
				return remaining, endCompleted, ctx.Err()
			}
		}
		e.report.CommRounds += int64(stepMax)
		e.globalStep++
		e.report.StepsExecuted++
		if feasErr != nil {
			teardown()
			return remaining, endCompleted, feasErr
		}
		if stalled {
			teardown()
			if unexplained {
				return remaining, endCompleted, fmt.Errorf(
					"faults: task %d stalled on flux from task %d at step %d with no injected fault to blame: schedule is infeasible",
					stallTask, stallMiss, g)
			}
			return remaining, endStall, nil
		}
	}
	teardown()
	return remaining, endCompleted, nil
}

// worker is one live processor for one epoch. Per step it drains its
// inbox, runs the tasks scheduled at that step (reading checkpointed
// upwind fluxes straight from psi and in-epoch cross fluxes from received
// messages), and routes every cross-processor send through the injector.
func (e *Engine) worker(p int32, byStep map[int32][]sched.TaskID, doneStart []bool,
	inbox []chan Delivery, stepCh <-chan stepMsg, reports chan<- workerAck,
	compute Compute, psi []float64) {

	inst := e.inst
	assign := e.rec.Assign()
	n := int32(inst.N())
	recv := map[sched.TaskID]float64{}
	localDone := map[sched.TaskID]bool{}
	for sm := range stepCh {
		for {
			select {
			case d := <-inbox[p]:
				recv[d.Task] = d.Psi
				continue
			default:
			}
			break
		}
		a := workerAck{proc: p}
		for _, t := range byStep[sm.local] {
			v, i := inst.Split(t)
			d := inst.DAGs[i]
			base := sched.TaskID(int32(i) * n)
			inflow := 0.0
			preds := d.In(v)
			ok := true
			for _, u := range preds {
				ut := base + sched.TaskID(u)
				switch {
				case doneStart[ut]:
					inflow += psi[ut] // durable checkpoint, written in an earlier epoch
				case assign[u] == p:
					if !localDone[ut] {
						a.err = fmt.Errorf("faults: proc %d task %d at step %d: local input %d not done", p, t, sm.global, ut)
						ok = false
					} else {
						inflow += psi[ut]
					}
				default:
					val, have := recv[ut]
					if !have {
						a.stalled, a.stallTask, a.stallMiss = true, t, ut
						ok = false
					} else {
						inflow += val
					}
				}
				if !ok {
					break
				}
			}
			if !ok {
				break
			}
			if len(preds) > 0 {
				inflow /= float64(len(preds))
			}
			val := compute(t, inflow)
			psi[t] = val
			localDone[t] = true
			a.completed = append(a.completed, t)
			for _, w := range d.Out(v) {
				q := assign[w]
				if q == p {
					continue
				}
				a.sent++
				for _, dl := range e.inj.OnSend(t, q, val, sm.global) {
					inbox[dl.To] <- dl
				}
			}
		}
		reports <- a
	}
}

// runEpochBatched is the deadline-driven envelope interconnect
// (internal/comm). The injector still operates on logical messages at
// produce time — a planned Drop/Delay/Duplicate hits exactly the message
// it hits on the oracle path — but released deliveries accumulate in a
// shared per-destination outbox tagged with their consumer's scheduled
// step, and the coordinator flushes exactly the due envelopes at each
// barrier. Delayed messages that mature are enqueued with an immediate
// deadline, so they still arrive at their maturity step (maturing past
// the consumer's step stalls the epoch exactly as unbatched). Logical
// accounting (MessagesSent, CommRounds, every RecoveryReport field) is
// bitwise-identical to the oracle; only commBatches/commBytes differ.
func (e *Engine) runEpochBatched(ctx context.Context, cur *sched.Schedule, done []bool,
	compute Compute, psi []float64, remaining int) (int, epochEnd, error) {

	e.report.Epochs++
	e.col.Counter("faults.epochs").Inc()
	e.col.Gauge("faults.live_procs").Set(int64(e.rec.NLive()))
	inst := e.inst
	m := inst.M
	assign := e.rec.Assign()

	byStep, err := sched.GroupSteps(cur, assign, done)
	if err != nil {
		return remaining, endCompleted, fmt.Errorf("faults: internal: %w", err)
	}
	outbox := comm.NewOutbox(m)
	// At most one envelope per destination is in flight per barrier (the
	// outbox keeps a single open envelope per destination, and matured
	// delayed messages ride it), so capacity 2 leaves margin.
	inbox := make([]chan *comm.Batch, m)
	for p := range inbox {
		inbox[p] = make(chan *comm.Batch, 2)
	}
	doneStart := append([]bool(nil), done...)
	ctr := comm.NewCounters(e.col)

	var spawned []int32
	stepCh := make([]chan stepMsg, m)
	reports := make(chan workerAck, m)
	var wg sync.WaitGroup
	for p := int32(0); p < int32(m); p++ {
		if !e.rec.Live(p) {
			continue
		}
		stepCh[p] = make(chan stepMsg)
		spawned = append(spawned, p)
		wg.Add(1)
		go func(p int32) {
			defer wg.Done()
			e.workerBatched(p, byStep[p], cur, doneStart, outbox, inbox, stepCh[p], reports, compute, psi)
		}(p)
	}
	teardown := func() {
		for _, p := range spawned {
			close(stepCh[p])
		}
		wg.Wait()
		e.inj.DiscardDelayed()
		// Undelivered envelopes are moot — the next epoch reads completed
		// producers' fluxes from the durable psi — so recycle them.
		outbox.DiscardAll()
		for p := range inbox {
			for {
				select {
				case b := <-inbox[p]:
					comm.PutBatch(b)
					continue
				default:
				}
				break
			}
		}
	}
	flush := func(b *comm.Batch) {
		e.commBatches++
		e.commBytes += comm.BatchWireBytes(len(b.Items))
		ctr.Envelope(len(b.Items))
		inbox[b.To] <- b
	}

	for ls := int32(0); ls < int32(cur.Makespan); ls++ {
		g := e.globalStep
		var dying []int32
		for _, p := range spawned {
			if cs := e.inj.CrashStep(p); cs >= 0 && cs <= g {
				dying = append(dying, p)
			}
		}
		if len(dying) > 0 {
			teardown()
			remaining = e.applyCrashes(dying, done, remaining)
			return remaining, endCrash, nil
		}
		if g-e.lastCkpt >= e.ckptEvery {
			for p := range e.sinceCkpt {
				e.sinceCkpt[p] = e.sinceCkpt[p][:0]
			}
			e.lastCkpt = g
		}
		// Matured delayed messages join their destination's envelope with
		// an immediate deadline; the flush below ships every envelope whose
		// earliest consumer (or matured item) is due at this step.
		for _, dl := range e.inj.Matured(g) {
			if e.rec.Live(dl.To) {
				outbox.Add(dl.To, dl.Task, dl.Psi, ls)
			}
		}
		outbox.FlushDue(ls, flush)
		for _, p := range spawned {
			select {
			case stepCh[p] <- stepMsg{local: ls, global: g}:
			case <-ctx.Done():
				teardown()
				return remaining, endCompleted, ctx.Err()
			}
		}
		var stepMax int32
		var feasErr error
		feasProc := int32(-1)
		stalled := false
		unexplained := false
		stallTask, stallMiss := sched.TaskID(-1), sched.TaskID(-1)
		for range spawned {
			select {
			case a := <-reports:
				for _, t := range a.completed {
					done[t] = true
					remaining--
					e.sinceCkpt[a.proc] = append(e.sinceCkpt[a.proc], t)
				}
				e.report.MessagesSent += int64(a.sent)
				ctr.Logical(int(a.sent))
				if a.sent > stepMax {
					stepMax = a.sent
				}
				if a.err != nil && (feasProc < 0 || a.proc < feasProc) {
					feasErr, feasProc = a.err, a.proc
				}
				if a.stalled {
					stalled = true
					if stallTask < 0 || a.stallTask < stallTask {
						stallTask, stallMiss = a.stallTask, a.stallMiss
					}
					if !e.inj.Explains(a.stallMiss, a.proc) {
						unexplained = true
					}
				}
			case <-ctx.Done():
				teardown()
				return remaining, endCompleted, ctx.Err()
			}
		}
		e.report.CommRounds += int64(stepMax)
		e.globalStep++
		e.report.StepsExecuted++
		if feasErr != nil {
			teardown()
			return remaining, endCompleted, feasErr
		}
		if stalled {
			teardown()
			if unexplained {
				return remaining, endCompleted, fmt.Errorf(
					"faults: task %d stalled on flux from task %d at step %d with no injected fault to blame: schedule is infeasible",
					stallTask, stallMiss, g)
			}
			return remaining, endStall, nil
		}
	}
	teardown()
	return remaining, endCompleted, nil
}

// workerBatched is one live processor for one epoch on the envelope
// interconnect: it drains whole envelopes instead of single deliveries,
// and routes every cross-processor send through the injector at produce
// time, appending released deliveries to the shared outbox tagged with
// the consuming task's scheduled (local) step — NoDue when the consumer
// was already durably done at epoch start.
func (e *Engine) workerBatched(p int32, byStep map[int32][]sched.TaskID, cur *sched.Schedule,
	doneStart []bool, outbox *comm.Outbox, inbox []chan *comm.Batch, stepCh <-chan stepMsg,
	reports chan<- workerAck, compute Compute, psi []float64) {

	inst := e.inst
	assign := e.rec.Assign()
	n := int32(inst.N())
	recv := map[sched.TaskID]float64{}
	localDone := map[sched.TaskID]bool{}
	for sm := range stepCh {
		for {
			select {
			case b := <-inbox[p]:
				for _, it := range b.Items {
					recv[it.Task] = it.Psi
				}
				comm.PutBatch(b)
				continue
			default:
			}
			break
		}
		a := workerAck{proc: p}
		for _, t := range byStep[sm.local] {
			v, i := inst.Split(t)
			d := inst.DAGs[i]
			base := sched.TaskID(int32(i) * n)
			inflow := 0.0
			preds := d.In(v)
			ok := true
			for _, u := range preds {
				ut := base + sched.TaskID(u)
				switch {
				case doneStart[ut]:
					inflow += psi[ut] // durable checkpoint, written in an earlier epoch
				case assign[u] == p:
					if !localDone[ut] {
						a.err = fmt.Errorf("faults: proc %d task %d at step %d: local input %d not done", p, t, sm.global, ut)
						ok = false
					} else {
						inflow += psi[ut]
					}
				default:
					val, have := recv[ut]
					if !have {
						a.stalled, a.stallTask, a.stallMiss = true, t, ut
						ok = false
					} else {
						inflow += val
					}
				}
				if !ok {
					break
				}
			}
			if !ok {
				break
			}
			if len(preds) > 0 {
				inflow /= float64(len(preds))
			}
			val := compute(t, inflow)
			psi[t] = val
			localDone[t] = true
			a.completed = append(a.completed, t)
			for _, w := range d.Out(v) {
				q := assign[w]
				if q == p {
					continue
				}
				a.sent++
				// The receiver keys received fluxes by producing task, so a
				// delivery released for this edge can satisfy every consumer
				// of (t -> q): its deadline is the earliest such consumer's
				// step. (With a Drop on a sibling edge the oracle's surviving
				// per-message delivery serves both consumers; the envelope
				// must arrive just as early.)
				due := int32(comm.NoDue)
				for _, w2 := range d.Out(v) {
					if assign[w2] != q {
						continue
					}
					wt := base + sched.TaskID(w2)
					if !doneStart[wt] && cur.Start[wt] < due {
						due = cur.Start[wt]
					}
				}
				for _, dl := range e.inj.OnSend(t, q, val, sm.global) {
					outbox.Add(dl.To, dl.Task, dl.Psi, due)
				}
			}
		}
		reports <- a
	}
}

// applyCrashes kills the given processors: their completions since the
// last durable checkpoint are rolled back (replayed later), their cells
// with outstanding work move to the least-loaded survivors (via the
// shared Recovery core), and the recovery itself acts as a checkpoint for
// everyone else.
func (e *Engine) applyCrashes(dying []int32, done []bool, remaining int) int {
	for _, p := range dying {
		e.inj.NoteCrash()
		for _, t := range e.sinceCkpt[p] {
			if done[t] {
				done[t] = false
				remaining++
				e.report.TasksReplayed++
				e.col.Counter("faults.tasks_replayed").Inc()
			}
		}
		e.sinceCkpt[p] = nil
	}
	e.col.Counter("faults.crashes").Add(int64(len(dying)))
	for p := range e.sinceCkpt {
		e.sinceCkpt[p] = e.sinceCkpt[p][:0]
	}
	e.lastCkpt = e.globalStep
	e.rec.Kill(dying, done)
	if e.rec.NLive() > 0 {
		e.needRebuild = true
	}
	return remaining
}
