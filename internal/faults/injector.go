package faults

import (
	"sort"
	"sync"

	"sweepsched/internal/sched"
)

// Delivery is one flux message the interconnect should place in a
// destination inbox.
type Delivery struct {
	To   int32
	Task sched.TaskID
	Psi  float64
}

type msgKey struct {
	task sched.TaskID
	to   int32
}

// Injector applies a Plan to the channel interconnect of an executor. The
// executor routes every cross-processor send through OnSend (which may
// suppress, hold or duplicate the delivery) and asks Matured at each
// barrier for held messages that are now due. Worker goroutines call
// OnSend concurrently; the decision for a message depends only on the plan
// (keyed by task and destination), never on call order, so executions are
// reproducible.
type Injector struct {
	mu        sync.Mutex
	crashStep map[int32]int32
	severStep map[int32]int32
	msg       map[msgKey]Event
	consumed  map[msgKey]Kind // message events already fired
	delayed   map[int32][]Delivery
	applied   map[Kind]int
	plan      *Plan
}

// NewInjector indexes a plan for execution. A nil plan injects nothing.
func NewInjector(plan *Plan) *Injector {
	inj := &Injector{
		crashStep: map[int32]int32{},
		severStep: map[int32]int32{},
		msg:       map[msgKey]Event{},
		consumed:  map[msgKey]Kind{},
		delayed:   map[int32][]Delivery{},
		applied:   map[Kind]int{},
		plan:      plan,
	}
	if plan != nil {
		for _, e := range plan.Events {
			switch e.Kind {
			case Crash:
				// Earliest crash wins if a proc appears twice.
				if st, ok := inj.crashStep[e.Proc]; !ok || e.Step < st {
					inj.crashStep[e.Proc] = e.Step
				}
			case Sever:
				if st, ok := inj.severStep[e.Proc]; !ok || e.Step < st {
					inj.severStep[e.Proc] = e.Step
				}
			default:
				inj.msg[msgKey{e.Task, e.To}] = e
			}
		}
	}
	return inj
}

// CrashStep returns the global barrier step at which the processor is
// scheduled to die, or -1 if it never crashes.
func (inj *Injector) CrashStep(p int32) int32 {
	if st, ok := inj.crashStep[p]; ok {
		return st
	}
	return -1
}

// NoteCrash records that a planned crash actually fired.
func (inj *Injector) NoteCrash() {
	inj.mu.Lock()
	inj.applied[Crash]++
	inj.mu.Unlock()
}

// SeverStep returns the global barrier step at which the processor's
// coordinator connection is scheduled to be cut, or -1 if never. Each
// sever fires once: callers should pair it with NoteSever and track
// firing themselves (the step survives here so diagnostics can still map
// a reconnect back to its plan event). Executors without a transport
// layer simply never ask.
func (inj *Injector) SeverStep(p int32) int32 {
	if st, ok := inj.severStep[p]; ok {
		return st
	}
	return -1
}

// NoteSever records that a planned connection cut actually fired.
func (inj *Injector) NoteSever() {
	inj.mu.Lock()
	inj.applied[Sever]++
	inj.mu.Unlock()
}

// OnSend applies the plan to one cross-processor flux message sent at the
// given global barrier step, returning the deliveries to perform now. A
// dropped or delayed message yields none (the delayed one surfaces later
// through Matured); a duplicated one yields two. Each message event fires
// once — on later sends of the same message (transport re-sweeps the
// schedule every source iteration) delivery is normal.
func (inj *Injector) OnSend(task sched.TaskID, to int32, psi float64, step int32) []Delivery {
	normal := []Delivery{{To: to, Task: task, Psi: psi}}
	if inj.plan == nil {
		return normal
	}
	key := msgKey{task, to}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	e, ok := inj.msg[key]
	if !ok {
		return normal
	}
	delete(inj.msg, key)
	inj.consumed[key] = e.Kind
	inj.applied[e.Kind]++
	switch e.Kind {
	case Drop:
		return nil
	case Delay:
		due := step + e.HoldSteps
		inj.delayed[due] = append(inj.delayed[due], normal[0])
		return nil
	case Duplicate:
		return []Delivery{normal[0], normal[0]}
	}
	return normal
}

// Matured removes and returns every held delivery due at or before the
// given global step, in deterministic (task, to) order.
func (inj *Injector) Matured(step int32) []Delivery {
	inj.mu.Lock()
	var due []Delivery
	for st, ds := range inj.delayed {
		if st <= step {
			due = append(due, ds...)
			delete(inj.delayed, st)
		}
	}
	inj.mu.Unlock()
	sort.Slice(due, func(a, b int) bool {
		if due[a].Task != due[b].Task {
			return due[a].Task < due[b].Task
		}
		return due[a].To < due[b].To
	})
	return due
}

// DiscardDelayed drops all held deliveries. Called on epoch teardown: the
// producers of held fluxes have completed, so after recovery their values
// are read from the durable checkpoint instead.
func (inj *Injector) DiscardDelayed() {
	inj.mu.Lock()
	inj.delayed = map[int32][]Delivery{}
	inj.mu.Unlock()
}

// Explains reports whether a missing flux for (task, to) is accounted for
// by a fired drop or a still-held delay — i.e. whether a stall on it is an
// injected fault rather than an infeasible schedule.
func (inj *Injector) Explains(task sched.TaskID, to int32) bool {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	k, ok := inj.consumed[msgKey{task, to}]
	return ok && (k == Drop || k == Delay)
}

// Applied returns how many events of the kind have fired so far.
func (inj *Injector) Applied(k Kind) int {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.applied[k]
}
