package faults

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"

	"sweepsched/internal/sched"
)

// Checkpoint is one worker process's durable sweep state: every task it
// has completed in the current source iteration, with the bit-exact
// angular flux of each. Workers write one of these to disk at every
// checkpoint barrier (internal/procrun); when the worker is later killed,
// recovery restores the checkpointed completions from disk and replays
// only the tail completed after the last durable write — the on-disk file
// is the authority, exactly as it would be on a real cluster.
type Checkpoint struct {
	Rank  int32 // owning processor
	Iter  int32 // source iteration the completions belong to
	Epoch int32 // executor epoch at the write barrier
	Step  int32 // global barrier step the checkpoint covers (exclusive)
	Tasks []sched.TaskID
	Psi   []float64 // Psi[i] is the flux of Tasks[i]
}

// Checkpoint file layout (little-endian):
//
//	magic   u32  'S''W''C''K'
//	version u16  1
//	rank    i32
//	iter    i32
//	epoch   i32
//	step    i32
//	count   u32
//	count × (task i32, psiBits u64)
//	crc32   u32  (IEEE, over everything before it)
//
// The trailing CRC makes torn writes detectable: any truncation or
// corruption fails decoding, so a partial checkpoint is never loaded.
const (
	ckptMagic   uint32 = 0x4b435753 // "SWCK" little-endian
	ckptVersion uint16 = 1
	ckptHeader         = 4 + 2 + 4 + 4 + 4 + 4 + 4
	ckptPair           = 4 + 8
)

// Encode serializes the checkpoint with its trailing CRC.
func (c *Checkpoint) Encode() ([]byte, error) {
	if len(c.Tasks) != len(c.Psi) {
		return nil, fmt.Errorf("faults: checkpoint has %d tasks but %d fluxes", len(c.Tasks), len(c.Psi))
	}
	buf := make([]byte, 0, ckptHeader+ckptPair*len(c.Tasks)+4)
	buf = binary.LittleEndian.AppendUint32(buf, ckptMagic)
	buf = binary.LittleEndian.AppendUint16(buf, ckptVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(c.Rank))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(c.Iter))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(c.Epoch))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(c.Step))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(c.Tasks)))
	for i, t := range c.Tasks {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(t))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(c.Psi[i]))
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	return buf, nil
}

// DecodeCheckpoint parses and validates an encoded checkpoint. Any
// truncation, trailing garbage or bit corruption yields an error — a
// caller can therefore trust every returned checkpoint completely.
func DecodeCheckpoint(b []byte) (*Checkpoint, error) {
	if len(b) < ckptHeader+4 {
		return nil, fmt.Errorf("faults: checkpoint truncated: %d bytes", len(b))
	}
	if got := binary.LittleEndian.Uint32(b[len(b)-4:]); got != crc32.ChecksumIEEE(b[:len(b)-4]) {
		return nil, fmt.Errorf("faults: checkpoint CRC mismatch")
	}
	if magic := binary.LittleEndian.Uint32(b[0:]); magic != ckptMagic {
		return nil, fmt.Errorf("faults: checkpoint magic %#x, want %#x", magic, ckptMagic)
	}
	if v := binary.LittleEndian.Uint16(b[4:]); v != ckptVersion {
		return nil, fmt.Errorf("faults: checkpoint version %d, want %d", v, ckptVersion)
	}
	c := &Checkpoint{
		Rank:  int32(binary.LittleEndian.Uint32(b[6:])),
		Iter:  int32(binary.LittleEndian.Uint32(b[10:])),
		Epoch: int32(binary.LittleEndian.Uint32(b[14:])),
		Step:  int32(binary.LittleEndian.Uint32(b[18:])),
	}
	count := int(binary.LittleEndian.Uint32(b[22:]))
	if want := ckptHeader + ckptPair*count + 4; len(b) != want {
		return nil, fmt.Errorf("faults: checkpoint declares %d entries (%d bytes) but holds %d bytes", count, want, len(b))
	}
	c.Tasks = make([]sched.TaskID, count)
	c.Psi = make([]float64, count)
	off := ckptHeader
	for i := 0; i < count; i++ {
		c.Tasks[i] = sched.TaskID(binary.LittleEndian.Uint32(b[off:]))
		c.Psi[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[off+4:]))
		off += ckptPair
	}
	return c, nil
}

// ckptName is the published (durable) file name for a checkpoint. The
// zero-padded (iter, epoch, step) triple sorts lexicographically in write
// order, so the newest generation is the lexicographically largest file.
func ckptName(rank, iter, epoch, step int32) string {
	return fmt.Sprintf("ckpt-r%04d-i%06d-e%06d-s%08d.bin", rank, iter, epoch, step)
}

// ckptPrefix matches every published checkpoint of the rank.
func ckptPrefix(rank int32) string { return fmt.Sprintf("ckpt-r%04d-", rank) }

// WriteDurable publishes the checkpoint atomically: the bytes are written
// to a temporary file in the same directory, synced to stable storage,
// and renamed into place. A process killed (even with SIGKILL) at any
// point mid-write leaves either the previous durable generation or a
// stray .tmp file that loaders ignore — never a torn published
// checkpoint. Older generations beyond the last two are pruned.
func WriteDurable(dir string, c *Checkpoint) (string, error) {
	buf, err := c.Encode()
	if err != nil {
		return "", err
	}
	final := filepath.Join(dir, ckptName(c.Rank, c.Iter, c.Epoch, c.Step))
	tmp, err := os.CreateTemp(dir, ckptPrefix(c.Rank)+"*.tmp")
	if err != nil {
		return "", err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return "", err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return "", err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return "", err
	}
	if err := os.Rename(tmpName, final); err != nil {
		os.Remove(tmpName)
		return "", err
	}
	pruneCheckpoints(dir, c.Rank, 2)
	return final, nil
}

// LoadLatest returns the newest valid durable checkpoint of the rank, or
// (nil, nil) when the rank has none. Torn or corrupt generations —
// possible only through external interference, since publication is
// atomic — are skipped in favor of the next older valid one, so recovery
// rolls back further instead of trusting a partial file. Temporary
// (.tmp) files from interrupted writes are never considered.
func LoadLatest(dir string, rank int32) (*Checkpoint, error) {
	names, err := publishedCheckpoints(dir, rank)
	if err != nil {
		return nil, err
	}
	// Newest first.
	sort.Sort(sort.Reverse(sort.StringSlice(names)))
	var lastErr error
	for _, name := range names {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			lastErr = err
			continue
		}
		c, err := DecodeCheckpoint(b)
		if err != nil {
			lastErr = err
			continue
		}
		if c.Rank != rank {
			lastErr = fmt.Errorf("faults: checkpoint %s is for rank %d", name, c.Rank)
			continue
		}
		return c, nil
	}
	if len(names) > 0 && lastErr != nil {
		return nil, fmt.Errorf("faults: no valid checkpoint for rank %d (last error: %w)", rank, lastErr)
	}
	return nil, nil
}

// publishedCheckpoints lists the rank's durable checkpoint files
// (unsorted base names), ignoring temporaries.
func publishedCheckpoints(dir string, rank int32) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	prefix := ckptPrefix(rank)
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.Type().IsRegular() && len(name) > len(prefix) &&
			name[:len(prefix)] == prefix && filepath.Ext(name) == ".bin" {
			names = append(names, name)
		}
	}
	return names, nil
}

// pruneCheckpoints removes all but the newest keep generations of the
// rank. Pruning is best-effort: a failure leaves extra files, never
// fewer.
func pruneCheckpoints(dir string, rank int32, keep int) {
	names, err := publishedCheckpoints(dir, rank)
	if err != nil || len(names) <= keep {
		return
	}
	sort.Strings(names)
	for _, name := range names[:len(names)-keep] {
		os.Remove(filepath.Join(dir, name))
	}
}
