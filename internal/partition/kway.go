package partition

import (
	"fmt"

	"sweepsched/internal/rng"
)

// Options tunes the multilevel partitioner. The zero value is usable via
// defaults applied in KWay.
type Options struct {
	// Imbalance is the allowed load factor: every part's vertex weight stays
	// below ceil(Imbalance × total/k). Default 1.08.
	Imbalance float64
	// CoarsenTo stops coarsening once the graph has at most this many
	// vertices (default max(30·k, 200)).
	CoarsenTo int
	// RefinePasses bounds the boundary-refinement sweeps per level
	// (default 6).
	RefinePasses int
	Seed         uint64
}

func (o Options) withDefaults(k int) Options {
	if o.Imbalance <= 1 {
		o.Imbalance = 1.08
	}
	if o.CoarsenTo <= 0 {
		o.CoarsenTo = 30 * k
		if o.CoarsenTo < 200 {
			o.CoarsenTo = 200
		}
	}
	if o.RefinePasses <= 0 {
		o.RefinePasses = 6
	}
	return o
}

// KWay partitions g into k parts, returning part labels in [0, k). The
// partitioner aims at small edge cut subject to the balance constraint in
// opts. k must be positive; k ≥ N degenerates to one vertex per part.
func KWay(g *Graph, k int, opts Options) ([]int32, error) {
	if k <= 0 {
		return nil, fmt.Errorf("partition: k must be positive, got %d", k)
	}
	part := make([]int32, g.N)
	if k == 1 {
		return part, nil
	}
	if k >= g.N {
		for v := 0; v < g.N; v++ {
			part[v] = int32(v % k)
		}
		return part, nil
	}
	opts = opts.withDefaults(k)
	r := rng.New(opts.Seed)

	// Coarsening phase.
	graphs := []*Graph{g}
	var maps [][]int32
	for graphs[len(graphs)-1].N > opts.CoarsenTo {
		cur := graphs[len(graphs)-1]
		cg, cmap := matching(cur, r)
		if cg.N >= cur.N*95/100 {
			break // matching stalled (e.g. star graphs); stop coarsening
		}
		graphs = append(graphs, cg)
		maps = append(maps, cmap)
	}

	// Initial partition on the coarsest graph.
	coarsest := graphs[len(graphs)-1]
	cpart := initialKWay(coarsest, k, opts, r)
	refine(coarsest, cpart, k, opts, r)

	// Uncoarsening with refinement.
	for lvl := len(graphs) - 2; lvl >= 0; lvl-- {
		fine := graphs[lvl]
		fpart := make([]int32, fine.N)
		cmap := maps[lvl]
		for v := 0; v < fine.N; v++ {
			fpart[v] = cpart[cmap[v]]
		}
		refine(fine, fpart, k, opts, r)
		cpart = fpart
	}
	copy(part, cpart)
	return part, nil
}

// maxLoad returns the balance ceiling for the given graph and k.
func maxLoad(g *Graph, k int, opts Options) int64 {
	total := g.TotalVWeight()
	lim := int64(float64(total)*opts.Imbalance/float64(k)) + 1
	// Never below the heaviest single vertex (otherwise infeasible).
	for _, w := range g.VWeight {
		if int64(w) > lim {
			lim = int64(w)
		}
	}
	return lim
}

// initialKWay grows k regions greedily on the (coarsest) graph: each part
// starts from a random unassigned seed and repeatedly absorbs the
// unassigned neighbor most connected to it until the part reaches its
// target weight. Leftover vertices go to the lightest adjacent or lightest
// overall part.
func initialKWay(g *Graph, k int, opts Options, r *rng.Source) []int32 {
	part := make([]int32, g.N)
	for i := range part {
		part[i] = -1
	}
	target := g.TotalVWeight() / int64(k)
	if target < 1 {
		target = 1
	}
	loads := make([]int64, k)
	gain := make([]int32, g.N) // connectivity of unassigned vertex to current part

	order := r.Perm(g.N)
	seedCursor := 0
	nextSeed := func() int32 {
		for seedCursor < len(order) {
			v := int32(order[seedCursor])
			seedCursor++
			if part[v] == -1 {
				return v
			}
		}
		return -1
	}

	for p := int32(0); p < int32(k); p++ {
		seed := nextSeed()
		if seed == -1 {
			break
		}
		// Frontier as a simple slice scanned for max gain; coarsest graphs
		// are small (≤ CoarsenTo), so O(F) scans are fine.
		part[seed] = p
		loads[p] += int64(g.VWeight[seed])
		var frontier []int32
		push := func(v int32) {
			adj, w := g.Neighbors(v)
			for j, u := range adj {
				if part[u] == -1 {
					if gain[u] == 0 {
						frontier = append(frontier, u)
					}
					gain[u] += w[j]
				}
			}
		}
		push(seed)
		for loads[p] < target && len(frontier) > 0 {
			bi, bg := -1, int32(-1)
			for i, u := range frontier {
				if part[u] != -1 {
					continue
				}
				if gain[u] > bg {
					bi, bg = i, gain[u]
				}
			}
			if bi == -1 {
				break
			}
			u := frontier[bi]
			frontier[bi] = frontier[len(frontier)-1]
			frontier = frontier[:len(frontier)-1]
			if part[u] != -1 {
				continue
			}
			part[u] = p
			loads[p] += int64(g.VWeight[u])
			push(u)
		}
		// Reset residual gains for the next region.
		for _, u := range frontier {
			gain[u] = 0
		}
	}

	// Assign any leftovers to the lightest part among neighbors, else the
	// lightest part overall.
	for v := int32(0); v < int32(g.N); v++ {
		if part[v] != -1 {
			continue
		}
		best := int32(-1)
		adj, _ := g.Neighbors(v)
		for _, u := range adj {
			if part[u] != -1 && (best == -1 || loads[part[u]] < loads[best]) {
				best = part[u]
			}
		}
		if best == -1 {
			best = 0
			for p := int32(1); p < int32(k); p++ {
				if loads[p] < loads[best] {
					best = p
				}
			}
		}
		part[v] = best
		loads[best] += int64(g.VWeight[v])
	}
	return part
}

// refine performs greedy boundary-move passes (FM-style, positive-gain and
// balance-improving moves only) until a pass makes no move or the pass
// limit is hit.
func refine(g *Graph, part []int32, k int, opts Options, r *rng.Source) {
	lim := maxLoad(g, k, opts)
	loads := PartWeights(g, part, k)
	conn := make([]int32, k) // scratch: connectivity of v to each part

	order := r.Perm(g.N)
	for pass := 0; pass < opts.RefinePasses; pass++ {
		moves := 0
		for _, vi := range order {
			v := int32(vi)
			home := part[v]
			adj, w := g.Neighbors(v)
			boundary := false
			for _, u := range adj {
				if part[u] != home {
					boundary = true
					break
				}
			}
			if !boundary {
				continue
			}
			for j, u := range adj {
				conn[part[u]] += w[j]
			}
			bestPart := home
			bestGain := int32(0)
			vw := int64(g.VWeight[v])
			for j := range adj {
				p := part[adj[j]]
				if p == home {
					continue
				}
				gain := conn[p] - conn[home]
				if gain <= bestGain {
					// Equal-gain moves allowed only when they improve balance.
					if gain < bestGain || !(gain == 0 && loads[p]+vw < loads[home]) {
						continue
					}
				}
				if loads[p]+vw > lim {
					continue
				}
				bestPart, bestGain = p, gain
			}
			for j := range adj {
				conn[part[adj[j]]] = 0
			}
			if bestPart != home {
				part[v] = bestPart
				loads[home] -= vw
				loads[bestPart] += vw
				moves++
			}
		}
		if moves == 0 {
			break
		}
	}

	// Balance repair: if the initial projection violated the ceiling and
	// gain moves could not fix it, push boundary vertices out of overloaded
	// parts regardless of cut gain.
	for iter := 0; iter < g.N; iter++ {
		over := int32(-1)
		for p := int32(0); p < int32(k); p++ {
			if loads[p] > lim {
				over = p
				break
			}
		}
		if over == -1 {
			break
		}
		moved := false
		for v := int32(0); v < int32(g.N) && !moved; v++ {
			if part[v] != over {
				continue
			}
			adj, _ := g.Neighbors(v)
			for _, u := range adj {
				p := part[u]
				if p != over && loads[p]+int64(g.VWeight[v]) <= lim {
					part[v] = p
					loads[over] -= int64(g.VWeight[v])
					loads[p] += int64(g.VWeight[v])
					moved = true
					break
				}
			}
		}
		if !moved {
			// Move any vertex to the globally lightest part.
			lightest := int32(0)
			for p := int32(1); p < int32(k); p++ {
				if loads[p] < loads[lightest] {
					lightest = p
				}
			}
			for v := int32(0); v < int32(g.N); v++ {
				if part[v] == over {
					part[v] = lightest
					loads[over] -= int64(g.VWeight[v])
					loads[lightest] += int64(g.VWeight[v])
					break
				}
			}
		}
	}
}

// Blocks partitions the graph into ceil(N/blockSize) balanced parts: the
// block decomposition used in §5.1 ("Partitioning into Blocks"). A block
// size of 1 returns the identity partition (every cell its own block).
func Blocks(g *Graph, blockSize int, seed uint64) ([]int32, int, error) {
	if blockSize <= 0 {
		return nil, 0, fmt.Errorf("partition: block size must be positive, got %d", blockSize)
	}
	if blockSize == 1 {
		part := make([]int32, g.N)
		for v := range part {
			part[v] = int32(v)
		}
		return part, g.N, nil
	}
	nBlocks := (g.N + blockSize - 1) / blockSize
	if nBlocks < 1 {
		nBlocks = 1
	}
	part, err := KWay(g, nBlocks, Options{Seed: seed})
	if err != nil {
		return nil, 0, err
	}
	return part, nBlocks, nil
}
