// Package partition implements a multilevel k-way graph partitioner in the
// style of METIS (Karypis-Kumar): heavy-edge-matching coarsening, greedy
// region-growing initial partitioning on the coarsest graph, and greedy
// boundary (Fiduccia-Mattheyses style) refinement during uncoarsening.
//
// The paper partitions mesh cells into blocks with METIS and then assigns a
// random processor to each block, trading a slightly larger makespan for a
// much smaller number of interprocessor edges (C1). This package is the
// from-scratch substitute: same contract (balanced parts, small edge cut),
// same position in the pipeline.
package partition

import (
	"fmt"
	"sort"

	"sweepsched/internal/mesh"
	"sweepsched/internal/rng"
)

// Graph is an undirected weighted graph in CSR form. Every edge appears in
// both endpoint lists with the same weight.
type Graph struct {
	N       int
	Start   []int32
	Adj     []int32
	EWeight []int32
	VWeight []int32
}

// NewGraph builds a graph from an edge list with unit vertex and edge
// weights. Parallel edges are merged with summed weight; self-loops are
// dropped. Construction is fully deterministic (adjacency lists come out
// sorted), which keeps every downstream partition reproducible for a seed.
func NewGraph(n int, edges [][2]int32) *Graph {
	merged := mergeEdges(edges)
	g := &Graph{N: n, Start: make([]int32, n+1)}
	for _, e := range merged {
		g.Start[e.u+1]++
		g.Start[e.v+1]++
	}
	for i := 0; i < n; i++ {
		g.Start[i+1] += g.Start[i]
	}
	total := g.Start[n]
	g.Adj = make([]int32, total)
	g.EWeight = make([]int32, total)
	cursor := make([]int32, n)
	for _, e := range merged {
		j := g.Start[e.u] + cursor[e.u]
		g.Adj[j], g.EWeight[j] = e.v, e.w
		cursor[e.u]++
		j = g.Start[e.v] + cursor[e.v]
		g.Adj[j], g.EWeight[j] = e.u, e.w
		cursor[e.v]++
	}
	g.VWeight = make([]int32, n)
	for i := range g.VWeight {
		g.VWeight[i] = 1
	}
	return g
}

// wedge is a canonicalized weighted edge (u < v).
type wedge struct {
	u, v int32
	w    int32
}

// mergeEdges canonicalizes, sorts and merges an edge list, dropping
// self-loops. The sorted result makes graph construction deterministic.
func mergeEdges(edges [][2]int32) []wedge {
	out := make([]wedge, 0, len(edges))
	for _, e := range edges {
		u, v := e[0], e[1]
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		out = append(out, wedge{u, v, 1})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].u != out[b].u {
			return out[a].u < out[b].u
		}
		return out[a].v < out[b].v
	})
	merged := out[:0]
	for _, e := range out {
		if len(merged) > 0 && merged[len(merged)-1].u == e.u && merged[len(merged)-1].v == e.v {
			merged[len(merged)-1].w += e.w
		} else {
			merged = append(merged, e)
		}
	}
	return merged
}

// FromMesh builds the cell-adjacency graph of a mesh with unit weights.
func FromMesh(m *mesh.Mesh) *Graph {
	edges := make([][2]int32, 0, m.NInteriorFaces())
	for i := range m.Faces {
		f := &m.Faces[i]
		if f.C1 == mesh.NoCell {
			continue
		}
		edges = append(edges, [2]int32{f.C0, f.C1})
	}
	return NewGraph(m.NCells(), edges)
}

// Neighbors returns v's adjacency and edge weights (aliasing internal
// storage).
func (g *Graph) Neighbors(v int32) (adj []int32, w []int32) {
	lo, hi := g.Start[v], g.Start[v+1]
	return g.Adj[lo:hi], g.EWeight[lo:hi]
}

// TotalVWeight returns the sum of vertex weights.
func (g *Graph) TotalVWeight() int64 {
	var t int64
	for _, w := range g.VWeight {
		t += int64(w)
	}
	return t
}

// EdgeCut returns the total weight of edges whose endpoints lie in
// different parts.
func EdgeCut(g *Graph, part []int32) int64 {
	var cut int64
	for v := int32(0); v < int32(g.N); v++ {
		adj, w := g.Neighbors(v)
		for j, u := range adj {
			if u > v && part[u] != part[v] {
				cut += int64(w[j])
			}
		}
	}
	return cut
}

// PartWeights returns the vertex-weight load of each of k parts.
func PartWeights(g *Graph, part []int32, k int) []int64 {
	loads := make([]int64, k)
	for v := 0; v < g.N; v++ {
		loads[part[v]] += int64(g.VWeight[v])
	}
	return loads
}

// Validate checks the CSR structure, symmetry and positive weights.
func (g *Graph) Validate() error {
	if len(g.Start) != g.N+1 {
		return fmt.Errorf("partition: Start length %d != N+1", len(g.Start))
	}
	if len(g.Adj) != len(g.EWeight) {
		return fmt.Errorf("partition: Adj/EWeight length mismatch")
	}
	for v := int32(0); v < int32(g.N); v++ {
		if g.VWeight[v] <= 0 {
			return fmt.Errorf("partition: vertex %d weight %d", v, g.VWeight[v])
		}
		adj, w := g.Neighbors(v)
		for j, u := range adj {
			if u < 0 || int(u) >= g.N || u == v {
				return fmt.Errorf("partition: bad edge %d->%d", v, u)
			}
			if w[j] <= 0 {
				return fmt.Errorf("partition: edge %d-%d weight %d", v, u, w[j])
			}
			// Find mirror.
			back, bw := g.Neighbors(u)
			found := false
			for i, x := range back {
				if x == v && bw[i] == w[j] {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("partition: edge %d-%d not mirrored", v, u)
			}
		}
	}
	return nil
}

// matching contracts g by a randomized heavy-edge matching. It returns the
// coarser graph and the vertex map coarse[v] for every fine vertex.
func matching(g *Graph, r *rng.Source) (*Graph, []int32) {
	match := make([]int32, g.N)
	for i := range match {
		match[i] = -1
	}
	order := r.Perm(g.N)
	for _, vi := range order {
		v := int32(vi)
		if match[v] != -1 {
			continue
		}
		adj, w := g.Neighbors(v)
		best := int32(-1)
		bestW := int32(-1)
		for j, u := range adj {
			if match[u] == -1 && w[j] > bestW {
				best, bestW = u, w[j]
			}
		}
		if best == -1 {
			match[v] = v
		} else {
			match[v] = best
			match[best] = v
		}
	}
	// Assign coarse ids.
	coarse := make([]int32, g.N)
	for i := range coarse {
		coarse[i] = -1
	}
	nc := int32(0)
	for v := int32(0); v < int32(g.N); v++ {
		if coarse[v] != -1 {
			continue
		}
		coarse[v] = nc
		if match[v] != v {
			coarse[match[v]] = nc
		}
		nc++
	}
	// Build the coarse graph deterministically: collect weighted coarse
	// edges, sort, merge.
	vw := make([]int32, nc)
	var raw []wedge
	for v := int32(0); v < int32(g.N); v++ {
		vw[coarse[v]] += g.VWeight[v]
		adj, w := g.Neighbors(v)
		for j, u := range adj {
			if u <= v { // count each fine edge once
				continue
			}
			cu, cv := coarse[v], coarse[u]
			if cu == cv {
				continue
			}
			if cu > cv {
				cu, cv = cv, cu
			}
			raw = append(raw, wedge{cu, cv, w[j]})
		}
	}
	sort.Slice(raw, func(a, b int) bool {
		if raw[a].u != raw[b].u {
			return raw[a].u < raw[b].u
		}
		return raw[a].v < raw[b].v
	})
	merged := raw[:0]
	for _, e := range raw {
		if len(merged) > 0 && merged[len(merged)-1].u == e.u && merged[len(merged)-1].v == e.v {
			merged[len(merged)-1].w += e.w
		} else {
			merged = append(merged, e)
		}
	}
	cg := &Graph{N: int(nc), Start: make([]int32, nc+1), VWeight: vw}
	for _, e := range merged {
		cg.Start[e.u+1]++
		cg.Start[e.v+1]++
	}
	for i := int32(0); i < nc; i++ {
		cg.Start[i+1] += cg.Start[i]
	}
	cg.Adj = make([]int32, cg.Start[nc])
	cg.EWeight = make([]int32, cg.Start[nc])
	cursor := make([]int32, nc)
	for _, e := range merged {
		j := cg.Start[e.u] + cursor[e.u]
		cg.Adj[j], cg.EWeight[j] = e.v, e.w
		cursor[e.u]++
		j = cg.Start[e.v] + cursor[e.v]
		cg.Adj[j], cg.EWeight[j] = e.u, e.w
		cursor[e.v]++
	}
	return cg, coarse
}
