package partition

import (
	"testing"
	"testing/quick"

	"sweepsched/internal/mesh"
	"sweepsched/internal/rng"
)

// grid2d builds an nx×ny 4-neighbor grid graph.
func grid2d(nx, ny int) *Graph {
	var edges [][2]int32
	id := func(i, j int) int32 { return int32(j*nx + i) }
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			if i+1 < nx {
				edges = append(edges, [2]int32{id(i, j), id(i+1, j)})
			}
			if j+1 < ny {
				edges = append(edges, [2]int32{id(i, j), id(i, j+1)})
			}
		}
	}
	return NewGraph(nx*ny, edges)
}

func TestNewGraphMergesParallelEdges(t *testing.T) {
	g := NewGraph(3, [][2]int32{{0, 1}, {1, 0}, {0, 1}, {1, 2}, {2, 2}})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	adj, w := g.Neighbors(0)
	if len(adj) != 1 || adj[0] != 1 || w[0] != 3 {
		t.Fatalf("merged edge wrong: adj=%v w=%v", adj, w)
	}
	// Self-loop dropped.
	adj2, _ := g.Neighbors(2)
	if len(adj2) != 1 {
		t.Fatalf("vertex 2 adjacency %v; self loop kept?", adj2)
	}
}

func TestFromMeshMatchesAdjacency(t *testing.T) {
	m := mesh.KuhnBox(mesh.BoxSpec{NX: 2, NY: 2, NZ: 2, Jitter: 0.1, Seed: 1})
	g := FromMesh(m)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.N != m.NCells() {
		t.Fatalf("N = %d, want %d", g.N, m.NCells())
	}
	total := 0
	for v := int32(0); v < int32(g.N); v++ {
		adj, _ := g.Neighbors(v)
		total += len(adj)
	}
	if total != 2*m.NInteriorFaces() {
		t.Fatalf("edge entries %d, want %d", total, 2*m.NInteriorFaces())
	}
}

func TestEdgeCutAndWeights(t *testing.T) {
	g := grid2d(4, 1) // path 0-1-2-3
	part := []int32{0, 0, 1, 1}
	if cut := EdgeCut(g, part); cut != 1 {
		t.Fatalf("cut = %d, want 1", cut)
	}
	loads := PartWeights(g, part, 2)
	if loads[0] != 2 || loads[1] != 2 {
		t.Fatalf("loads = %v", loads)
	}
}

func TestKWayErrors(t *testing.T) {
	g := grid2d(3, 3)
	if _, err := KWay(g, 0, Options{}); err == nil {
		t.Fatal("k=0 did not error")
	}
	if _, err := KWay(g, -2, Options{}); err == nil {
		t.Fatal("k<0 did not error")
	}
}

func TestKWayTrivialCases(t *testing.T) {
	g := grid2d(4, 4)
	part, err := KWay(g, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range part {
		if p != 0 {
			t.Fatalf("k=1 produced part %d", p)
		}
	}
	part, err = KWay(g, 100, Options{}) // k > N
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int32]int{}
	for _, p := range part {
		if p < 0 || p >= 100 {
			t.Fatalf("part %d out of range", p)
		}
		seen[p]++
	}
	for p, c := range seen {
		if c != 1 {
			t.Fatalf("k>N: part %d holds %d vertices", p, c)
		}
	}
}

func checkBalance(t *testing.T, g *Graph, part []int32, k int, imbalance float64) {
	t.Helper()
	loads := PartWeights(g, part, k)
	lim := int64(float64(g.TotalVWeight())*imbalance/float64(k)) + 1
	for p, l := range loads {
		if l > lim {
			t.Fatalf("part %d load %d exceeds limit %d (loads %v)", p, l, lim, loads)
		}
	}
}

func TestKWayBalanced(t *testing.T) {
	g := grid2d(20, 20)
	for _, k := range []int{2, 4, 7, 16} {
		part, err := KWay(g, k, Options{Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range part {
			if p < 0 || int(p) >= k {
				t.Fatalf("k=%d: label %d out of range", k, p)
			}
		}
		checkBalance(t, g, part, k, 1.08)
	}
}

func TestKWayBeatsRandomCut(t *testing.T) {
	g := grid2d(30, 30)
	const k = 9
	part, err := KWay(g, k, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	mlCut := EdgeCut(g, part)

	r := rng.New(7)
	randPart := make([]int32, g.N)
	for v := range randPart {
		randPart[v] = int32(r.Intn(k))
	}
	randCut := EdgeCut(g, randPart)
	if mlCut*3 > randCut {
		t.Fatalf("multilevel cut %d not clearly better than random cut %d", mlCut, randCut)
	}
	// A 30x30 grid split into 9 parts has an ideal cut around 6*30 = 180;
	// allow generous slack but catch catastrophic regressions.
	if mlCut > 500 {
		t.Fatalf("multilevel cut %d too large for 30x30 grid, k=9", mlCut)
	}
}

func TestKWayOnMeshGraph(t *testing.T) {
	m := mesh.KuhnBox(mesh.BoxSpec{NX: 6, NY: 6, NZ: 6, Jitter: 0.15, Seed: 2})
	g := FromMesh(m)
	for _, k := range []int{4, 16} {
		part, err := KWay(g, k, Options{Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		checkBalance(t, g, part, k, 1.08)
		cut := EdgeCut(g, part)
		if cut <= 0 {
			t.Fatalf("k=%d: zero cut on connected graph", k)
		}
	}
}

func TestGraphConstructionDeterministic(t *testing.T) {
	// Graph construction must not depend on map iteration order: building
	// the same graph twice (from shuffled edge lists) must give identical
	// CSR arrays, and downstream partitions must match exactly. A
	// borderline acceptance check once flapped because of this.
	m := mesh.KuhnBox(mesh.BoxSpec{NX: 4, NY: 4, NZ: 3, Jitter: 0.15, Seed: 9})
	g1 := FromMesh(m)
	g2 := FromMesh(m)
	for v := int32(0); v < int32(g1.N); v++ {
		a1, w1 := g1.Neighbors(v)
		a2, w2 := g2.Neighbors(v)
		if len(a1) != len(a2) {
			t.Fatalf("vertex %d adjacency length differs", v)
		}
		for j := range a1 {
			if a1[j] != a2[j] || w1[j] != w2[j] {
				t.Fatalf("vertex %d adjacency order differs at %d", v, j)
			}
			if j > 0 && a1[j] <= a1[j-1] {
				t.Fatalf("vertex %d adjacency not sorted: %v", v, a1)
			}
		}
	}
	p1, err := KWay(g1, 8, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := KWay(g2, 8, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for v := range p1 {
		if p1[v] != p2[v] {
			t.Fatalf("partition differs at vertex %d despite identical inputs", v)
		}
	}
}

func TestKWayDeterministic(t *testing.T) {
	g := grid2d(15, 15)
	a, _ := KWay(g, 8, Options{Seed: 42})
	b, _ := KWay(g, 8, Options{Seed: 42})
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("nondeterministic partition at vertex %d", v)
		}
	}
}

func TestKWayDisconnectedGraph(t *testing.T) {
	// Two disjoint paths.
	edges := [][2]int32{{0, 1}, {1, 2}, {3, 4}, {4, 5}}
	g := NewGraph(6, edges)
	part, err := KWay(g, 2, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	checkBalance(t, g, part, 2, 1.35)
}

func TestBlocks(t *testing.T) {
	g := grid2d(10, 10)
	part, nBlocks, err := Blocks(g, 25, 1)
	if err != nil {
		t.Fatal(err)
	}
	if nBlocks != 4 {
		t.Fatalf("nBlocks = %d, want 4", nBlocks)
	}
	checkBalance(t, g, part, nBlocks, 1.08)

	// Block size 1: identity.
	part1, n1, err := Blocks(g, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if n1 != g.N {
		t.Fatalf("blockSize 1: nBlocks = %d", n1)
	}
	for v, p := range part1 {
		if int(p) != v {
			t.Fatalf("blockSize 1 not identity at %d", v)
		}
	}

	if _, _, err := Blocks(g, 0, 1); err == nil {
		t.Fatal("blockSize 0 did not error")
	}
}

func TestBlocksLargerThanGraph(t *testing.T) {
	g := grid2d(3, 3)
	part, nBlocks, err := Blocks(g, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if nBlocks != 1 {
		t.Fatalf("nBlocks = %d, want 1", nBlocks)
	}
	for _, p := range part {
		if p != 0 {
			t.Fatalf("single block produced label %d", p)
		}
	}
}

func TestMatchingHalvesGraph(t *testing.T) {
	g := grid2d(16, 16)
	cg, cmap := matching(g, rng.New(1))
	if err := cg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cg.N >= g.N || cg.N < g.N/2 {
		t.Fatalf("coarse N = %d from %d", cg.N, g.N)
	}
	// Vertex weight conserved.
	if cg.TotalVWeight() != g.TotalVWeight() {
		t.Fatalf("vertex weight changed: %d -> %d", g.TotalVWeight(), cg.TotalVWeight())
	}
	for v, c := range cmap {
		if c < 0 || int(c) >= cg.N {
			t.Fatalf("cmap[%d] = %d out of range", v, c)
		}
	}
}

func TestQuickKWayInvariants(t *testing.T) {
	f := func(seed uint64, kRaw, nxRaw uint8) bool {
		nx := int(nxRaw%8) + 3
		k := int(kRaw%6) + 1
		g := grid2d(nx, nx)
		part, err := KWay(g, k, Options{Seed: seed})
		if err != nil {
			return false
		}
		loads := PartWeights(g, part, k)
		lim := int64(float64(g.TotalVWeight())*1.08/float64(k)) + 1
		for _, p := range part {
			if p < 0 || int(p) >= k {
				return false
			}
		}
		for _, l := range loads {
			if l > lim {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkKWayMeshK32(b *testing.B) {
	m := mesh.KuhnBox(mesh.BoxSpec{NX: 8, NY: 8, NZ: 8, Jitter: 0.15, Seed: 1})
	g := FromMesh(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := KWay(g, 32, Options{Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
