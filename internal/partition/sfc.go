package partition

// Space-filling-curve decomposition: order cells along a Morton (Z-order)
// curve through their centroids and cut the order into equal-size
// contiguous blocks. Production sweep codes use exactly this as a cheap,
// deterministic alternative to multilevel partitioning: locality on the
// curve implies locality in space, so contiguous chunks have small surface
// (few interprocessor edges), at zero optimization cost.

import (
	"fmt"
	"sort"

	"sweepsched/internal/geom"
)

// mortonBits is the per-axis quantization of centroid coordinates.
const mortonBits = 21

// MortonCode interleaves the quantized coordinates of p (scaled into box)
// into a 63-bit Z-order key.
func MortonCode(p geom.Vec3, box geom.AABB) uint64 {
	q := func(x, lo, hi float64) uint64 {
		if hi <= lo {
			return 0
		}
		f := (x - lo) / (hi - lo)
		if f < 0 {
			f = 0
		}
		if f >= 1 {
			f = 1 - 1e-12
		}
		return uint64(f * float64(uint64(1)<<mortonBits))
	}
	return interleave3(
		q(p.X, box.Min.X, box.Max.X),
		q(p.Y, box.Min.Y, box.Max.Y),
		q(p.Z, box.Min.Z, box.Max.Z),
	)
}

// interleave3 spreads the low 21 bits of x, y, z into every third bit.
func interleave3(x, y, z uint64) uint64 {
	return spread(x) | spread(y)<<1 | spread(z)<<2
}

// spread inserts two zero bits between each of the low 21 bits of v.
func spread(v uint64) uint64 {
	v &= (1 << mortonBits) - 1
	v = (v | v<<32) & 0x1f00000000ffff
	v = (v | v<<16) & 0x1f0000ff0000ff
	v = (v | v<<8) & 0x100f00f00f00f00f
	v = (v | v<<4) & 0x10c30c30c30c30c3
	v = (v | v<<2) & 0x1249249249249249
	return v
}

// MortonBlocks partitions points into ceil(n/blockSize) contiguous chunks
// of the Z-order curve (ties broken by index, so the result is
// deterministic). It returns per-point block labels and the block count.
func MortonBlocks(points []geom.Vec3, blockSize int) ([]int32, int, error) {
	n := len(points)
	if n == 0 {
		return nil, 0, fmt.Errorf("partition: no points to decompose")
	}
	if blockSize <= 0 {
		return nil, 0, fmt.Errorf("partition: block size must be positive, got %d", blockSize)
	}
	box := geom.NewAABB(points...)
	type keyed struct {
		code uint64
		idx  int32
	}
	order := make([]keyed, n)
	for i, p := range points {
		order[i] = keyed{MortonCode(p, box), int32(i)}
	}
	sort.Slice(order, func(a, b int) bool {
		if order[a].code != order[b].code {
			return order[a].code < order[b].code
		}
		return order[a].idx < order[b].idx
	})
	nBlocks := (n + blockSize - 1) / blockSize
	part := make([]int32, n)
	for pos, kv := range order {
		part[kv.idx] = int32(pos / blockSize)
	}
	return part, nBlocks, nil
}
