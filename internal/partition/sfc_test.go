package partition

import (
	"testing"
	"testing/quick"

	"sweepsched/internal/geom"
	"sweepsched/internal/mesh"
	"sweepsched/internal/rng"
)

func TestSpreadInterleave(t *testing.T) {
	if spread(0b111) != 0b1001001 {
		t.Fatalf("spread(0b111) = %b", spread(0b111))
	}
	// interleave3(1,0,0)=1, (0,1,0)=2, (0,0,1)=4.
	if interleave3(1, 0, 0) != 1 || interleave3(0, 1, 0) != 2 || interleave3(0, 0, 1) != 4 {
		t.Fatal("axis bit placement wrong")
	}
	// All 21 bits used, none collide.
	full := uint64(1<<21) - 1
	x, y, z := interleave3(full, 0, 0), interleave3(0, full, 0), interleave3(0, 0, full)
	if x&y != 0 || x&z != 0 || y&z != 0 {
		t.Fatal("interleaved axes overlap")
	}
	if x|y|z != interleave3(full, full, full) {
		t.Fatal("interleave not a bitwise union of axes")
	}
}

func TestMortonCodeOrdering(t *testing.T) {
	box := geom.AABB{Min: geom.Vec3{}, Max: geom.Vec3{X: 1, Y: 1, Z: 1}}
	origin := MortonCode(geom.Vec3{X: 0.01, Y: 0.01, Z: 0.01}, box)
	far := MortonCode(geom.Vec3{X: 0.99, Y: 0.99, Z: 0.99}, box)
	if origin >= far {
		t.Fatalf("origin code %d >= far code %d", origin, far)
	}
	// Out-of-box points clamp rather than wrap.
	below := MortonCode(geom.Vec3{X: -5, Y: -5, Z: -5}, box)
	if below != 0 {
		t.Fatalf("below-box code %d, want 0", below)
	}
}

func TestMortonBlocksBalanced(t *testing.T) {
	m := mesh.KuhnBox(mesh.BoxSpec{NX: 5, NY: 5, NZ: 5, Jitter: 0.15, Seed: 3})
	part, nBlocks, err := MortonBlocks(m.Centroids, 50)
	if err != nil {
		t.Fatal(err)
	}
	want := (m.NCells() + 49) / 50
	if nBlocks != want {
		t.Fatalf("nBlocks = %d, want %d", nBlocks, want)
	}
	counts := make([]int, nBlocks)
	for _, b := range part {
		if b < 0 || int(b) >= nBlocks {
			t.Fatalf("label %d out of range", b)
		}
		counts[b]++
	}
	for b, c := range counts[:nBlocks-1] {
		if c != 50 {
			t.Fatalf("block %d holds %d cells, want 50", b, c)
		}
	}
}

func TestMortonBlocksLocality(t *testing.T) {
	// SFC blocks must cut far fewer edges than a random assignment of cells
	// to the same number of blocks.
	m := mesh.KuhnBox(mesh.BoxSpec{NX: 6, NY: 6, NZ: 6, Jitter: 0.15, Seed: 4})
	g := FromMesh(m)
	part, nBlocks, err := MortonBlocks(m.Centroids, 64)
	if err != nil {
		t.Fatal(err)
	}
	sfcCut := EdgeCut(g, part)
	r := rng.New(5)
	randPart := make([]int32, g.N)
	for v := range randPart {
		randPart[v] = int32(r.Intn(nBlocks))
	}
	randCut := EdgeCut(g, randPart)
	if sfcCut*3 > randCut {
		t.Fatalf("SFC cut %d not clearly below random cut %d", sfcCut, randCut)
	}
}

func TestMortonBlocksErrors(t *testing.T) {
	if _, _, err := MortonBlocks(nil, 4); err == nil {
		t.Fatal("empty points accepted")
	}
	if _, _, err := MortonBlocks([]geom.Vec3{{}}, 0); err == nil {
		t.Fatal("zero block size accepted")
	}
}

func TestMortonBlocksDeterministic(t *testing.T) {
	m := mesh.KuhnBox(mesh.BoxSpec{NX: 4, NY: 4, NZ: 4, Jitter: 0.2, Seed: 6})
	a, _, _ := MortonBlocks(m.Centroids, 32)
	b, _, _ := MortonBlocks(m.Centroids, 32)
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("SFC blocks nondeterministic at %d", v)
		}
	}
}

func TestQuickMortonBlocksCover(t *testing.T) {
	f := func(seed uint64, bsRaw uint8) bool {
		bs := int(bsRaw%40) + 1
		m := mesh.KuhnBox(mesh.BoxSpec{NX: 3, NY: 2, NZ: 2, Jitter: 0.1, Seed: seed})
		part, nBlocks, err := MortonBlocks(m.Centroids, bs)
		if err != nil {
			return false
		}
		for _, b := range part {
			if b < 0 || int(b) >= nBlocks {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
