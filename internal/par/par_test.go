package par

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForEachRunsAll(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 8, 100} {
		var count int64
		hit := make([]int32, 50)
		err := ForEach(50, workers, func(i int) error {
			atomic.AddInt64(&count, 1)
			atomic.AddInt32(&hit[i], 1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if count != 50 {
			t.Fatalf("workers=%d: ran %d of 50", workers, count)
		}
		for i, h := range hit {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(0, 4, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachFirstErrorByIndex(t *testing.T) {
	e3 := errors.New("three")
	e7 := errors.New("seven")
	err := ForEach(10, 1, func(i int) error {
		switch i {
		case 3:
			return e3
		case 7:
			return e7
		}
		return nil
	})
	if err != e3 {
		t.Fatalf("err = %v, want error from index 3", err)
	}
}

func TestForEachParallelErrorStops(t *testing.T) {
	var ran int64
	err := ForEach(10000, 4, func(i int) error {
		atomic.AddInt64(&ran, 1)
		if i == 5 {
			return errors.New("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("error lost")
	}
	if atomic.LoadInt64(&ran) == 10000 {
		t.Log("note: all indices ran before the error propagated (allowed but unusual)")
	}
}

func TestMapOrdered(t *testing.T) {
	out, err := Map(20, 4, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestMapError(t *testing.T) {
	_, err := Map(5, 2, func(i int) (int, error) {
		if i == 2 {
			return 0, errors.New("bad")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("error lost")
	}
}

// TestForEachStress runs far more indices than workers with contention on a
// shared counter; run under -race this exercises the claim/complete
// protocol.
func TestForEachStress(t *testing.T) {
	const n = 200000
	for _, workers := range []int{2, 3, 8, 16} {
		var sum int64
		hit := make([]int32, n)
		if err := ForEach(n, workers, func(i int) error {
			atomic.AddInt64(&sum, int64(i))
			atomic.AddInt32(&hit[i], 1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if want := int64(n) * (n - 1) / 2; sum != want {
			t.Fatalf("workers=%d: sum = %d, want %d", workers, sum, want)
		}
		for i, h := range hit {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
}

// TestForEachLowestIndexError injects an error at every index. Index 0 is
// always claimed first (the atomic counter starts below it), so the
// documented contract — the lowest-index error wins — pins the result to
// index 0's error regardless of worker count or interleaving.
func TestForEachLowestIndexError(t *testing.T) {
	const n = 1000
	errAt := make([]error, n)
	for i := range errAt {
		errAt[i] = fmt.Errorf("err-%d", i)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		for trial := 0; trial < 20; trial++ {
			err := ForEach(n, workers, func(i int) error { return errAt[i] })
			if err != errAt[0] {
				t.Fatalf("workers=%d: err = %v, want %v", workers, err, errAt[0])
			}
		}
	}
}

// TestForEachErrorMidRange errors midway with a busy pool; the returned
// error must be one of the injected ones and later indices must stop being
// claimed eventually (the pool drains without running all of them, unless
// scheduling raced them all in — allowed, just unusual).
func TestForEachErrorMidRange(t *testing.T) {
	boom := errors.New("boom")
	const n = 100000
	var ran int64
	err := ForEach(n, 4, func(i int) error {
		atomic.AddInt64(&ran, 1)
		if i >= n/2 {
			return boom
		}
		return nil
	})
	if err != boom {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if got := atomic.LoadInt64(&ran); got < int64(n/2) {
		t.Fatalf("only %d indices ran; the failure is before any injected error", got)
	}
}

// TestForEachPanicPropagation asserts a panic in fn resurfaces on the
// calling goroutine with its original value, for serial and parallel pools.
func TestForEachPanicPropagation(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic swallowed", workers)
				}
				if s, ok := r.(string); !ok || s != "kaboom-7" {
					t.Fatalf("workers=%d: recovered %v, want kaboom-7", workers, r)
				}
			}()
			_ = ForEach(100, workers, func(i int) error {
				if i == 7 {
					panic("kaboom-7")
				}
				return nil
			})
			t.Fatalf("workers=%d: ForEach returned normally", workers)
		}()
	}
}

// TestForEachPanicBeatsLaterError: serial order puts a panic at index 3
// before an error at index 9, so the panic must win even in parallel runs
// where both may occur.
func TestForEachPanicBeatsLaterError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				if r := recover(); r == nil {
					t.Fatalf("workers=%d: expected panic, got normal return", workers)
				}
			}()
			_ = ForEach(10, workers, func(i int) error {
				if i == 3 {
					panic("early")
				}
				if i == 9 {
					return errors.New("late")
				}
				return nil
			})
		}()
	}
}

func TestWorkersNormalization(t *testing.T) {
	if Workers(0) < 1 || Workers(-3) < 1 {
		t.Fatal("Workers(<=0) must select at least one worker")
	}
	if Workers(5) != 5 {
		t.Fatalf("Workers(5) = %d", Workers(5))
	}
}

func TestQuickForEachCoversAllIndices(t *testing.T) {
	f := func(nRaw, wRaw uint8) bool {
		n := int(nRaw % 64)
		w := int(wRaw % 8)
		hit := make([]int32, n)
		if err := ForEach(n, w, func(i int) error {
			atomic.AddInt32(&hit[i], 1)
			return nil
		}); err != nil {
			return false
		}
		for _, h := range hit {
			if h != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
