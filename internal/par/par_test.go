package par

import (
	"errors"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForEachRunsAll(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 8, 100} {
		var count int64
		hit := make([]int32, 50)
		err := ForEach(50, workers, func(i int) error {
			atomic.AddInt64(&count, 1)
			atomic.AddInt32(&hit[i], 1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if count != 50 {
			t.Fatalf("workers=%d: ran %d of 50", workers, count)
		}
		for i, h := range hit {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(0, 4, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachFirstErrorByIndex(t *testing.T) {
	e3 := errors.New("three")
	e7 := errors.New("seven")
	err := ForEach(10, 1, func(i int) error {
		switch i {
		case 3:
			return e3
		case 7:
			return e7
		}
		return nil
	})
	if err != e3 {
		t.Fatalf("err = %v, want error from index 3", err)
	}
}

func TestForEachParallelErrorStops(t *testing.T) {
	var ran int64
	err := ForEach(10000, 4, func(i int) error {
		atomic.AddInt64(&ran, 1)
		if i == 5 {
			return errors.New("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("error lost")
	}
	if atomic.LoadInt64(&ran) == 10000 {
		t.Log("note: all indices ran before the error propagated (allowed but unusual)")
	}
}

func TestMapOrdered(t *testing.T) {
	out, err := Map(20, 4, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestMapError(t *testing.T) {
	_, err := Map(5, 2, func(i int) (int, error) {
		if i == 2 {
			return 0, errors.New("bad")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("error lost")
	}
}

func TestQuickForEachCoversAllIndices(t *testing.T) {
	f := func(nRaw, wRaw uint8) bool {
		n := int(nRaw % 64)
		w := int(wRaw % 8)
		hit := make([]int32, n)
		if err := ForEach(n, w, func(i int) error {
			atomic.AddInt32(&hit[i], 1)
			return nil
		}); err != nil {
			return false
		}
		for _, h := range hit {
			if h != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
