// Package par provides the small deterministic parallel-iteration helpers
// used throughout the pipeline (DAG induction, priority computation, metric
// accumulation) and by the experiment drivers: fan a fixed index range over
// a bounded worker pool, collect per-index results in order, and stop early
// on the first error. Determinism comes from indexing, not scheduling: every
// index computes into its own slot, so output never depends on goroutine
// interleaving, and any reduction over the slots is performed by the caller
// in index order.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a worker-count knob: w <= 0 selects GOMAXPROCS,
// anything else is returned unchanged. It is the single interpretation of
// the `Workers` options plumbed through the public API.
func Workers(w int) int {
	if w <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

// ForEach runs fn(i) for i in [0, n) on up to workers goroutines
// (workers <= 0 selects GOMAXPROCS; the pool never exceeds n).
//
// Error contract: ForEach returns the lowest-index error — the error
// recorded at the smallest index among all indices whose fn call returned
// non-nil. Once any call fails, workers stop claiming new indices, so
// higher indices may never run; indices below the returned one either
// succeeded or were already in flight when the failure occurred. With
// workers == 1 execution is a plain serial loop and the first (lowest)
// failing index short-circuits exactly as a for-loop would.
//
// Panic contract: a panic inside fn is captured, the pool drains, and the
// panic is re-raised on the calling goroutine with its original value
// (lowest panicking index wins, and a panic at a lower index outranks an
// error at a higher one, matching serial execution order). Callers
// therefore observe panics exactly as they would from a serial loop.
func ForEach(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	panics := make([]*panicValue, n)
	var next int64 = -1
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n || failed.Load() {
					return
				}
				if pv := protect(fn, i, errs); pv != nil {
					panics[i] = pv
					failed.Store(true)
				} else if errs[i] != nil {
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if panics[i] != nil {
			panic(panics[i].v)
		}
		if errs[i] != nil {
			return errs[i]
		}
	}
	return nil
}

// panicValue distinguishes "fn panicked with nil" from "fn did not panic".
type panicValue struct{ v interface{} }

// protect runs fn(i), storing its error in errs[i] and converting a panic
// into a returned panicValue so the pool can drain before re-raising.
func protect(fn func(i int) error, i int, errs []error) (pv *panicValue) {
	defer func() {
		if r := recover(); r != nil {
			pv = &panicValue{r}
		}
	}()
	errs[i] = fn(i)
	return nil
}

// Map runs fn for every index and returns the results in index order.
func Map[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(n, workers, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
