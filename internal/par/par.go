// Package par provides the small deterministic parallel-iteration helpers
// used by the experiment drivers: fan a fixed index range over a bounded
// worker pool, collect per-index results in order, and stop early on the
// first error. Determinism comes from indexing, not scheduling: every
// index computes into its own slot, so output never depends on goroutine
// interleaving.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEach runs fn(i) for i in [0, n) on up to workers goroutines
// (workers <= 0 selects GOMAXPROCS). It returns the first error by index
// order; later indices may or may not have run once an error occurs.
func ForEach(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next int64 = -1
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n || failed.Load() {
					return
				}
				if err := fn(i); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Map runs fn for every index and returns the results in index order.
func Map[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(n, workers, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
