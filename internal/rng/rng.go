// Package rng provides small, fast, deterministic pseudo-random number
// generators for reproducible scheduling experiments.
//
// The package intentionally avoids math/rand so that experiment outputs are
// stable across Go releases: the exact bit streams of splitmix64 and
// xoshiro256** are fixed by their reference definitions and will never
// change underneath us.
//
// Two generators are provided:
//
//   - SplitMix64: a tiny 64-bit state generator, used mostly to seed other
//     generators and to derive independent streams from a master seed.
//   - Xoshiro256: the xoshiro256** generator, the workhorse used by all
//     randomized algorithms in this repository.
//
// Derived streams (see New and (*Source).Fork) let each mesh, direction set
// and algorithm invocation draw from statistically independent sequences
// while remaining a pure function of the master experiment seed.
package rng

import "math/bits"

// SplitMix64 is the splitmix64 generator of Steele, Lea and Flood. Its zero
// value is a valid generator seeded with 0.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next value in the splitmix64 sequence.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Source is a xoshiro256** pseudo-random generator. It is not safe for
// concurrent use; Fork per goroutine instead, which is both faster and
// reproducible regardless of scheduling order.
type Source struct {
	s [4]uint64
}

// New returns a Source whose state is derived from seed via splitmix64, as
// recommended by the xoshiro authors (avoids the all-zero state and
// decorrelates nearby seeds).
func New(seed uint64) *Source {
	sm := NewSplitMix64(seed)
	var src Source
	for i := range src.s {
		src.s[i] = sm.Next()
	}
	// The all-zero state is invalid (it is a fixed point). splitmix64 cannot
	// produce four consecutive zeros, but keep the guard for clarity.
	if src.s[0]|src.s[1]|src.s[2]|src.s[3] == 0 {
		src.s[0] = 0x9e3779b97f4a7c15
	}
	return &src
}

// Fork derives a new independent Source from r. The child stream is a pure
// function of r's current state, and advancing r afterwards does not affect
// the child. Fork is the supported way to hand generators to goroutines.
func (r *Source) Fork() *Source {
	return New(r.Uint64() ^ 0xd1b54a32d192ed03)
}

// Substream derives the i-th member of a family of independent child
// streams as a pure function of r's *current* state and i, without
// advancing r. Unlike Fork (which consumes a draw per child, making child
// identity depend on call order), Substream(i) gives the same stream no
// matter when — or from which goroutine's loop iteration — it is derived.
// This is the primitive behind per-direction randomness in parallel
// regions: draws are identical at Workers=1 and Workers=N because each
// direction's stream depends only on (parent state, direction index).
//
// The caller is responsible for advancing r afterwards (a single Uint64
// draw suffices) if a later Substream family must differ from this one.
func (r *Source) Substream(i uint64) *Source {
	// Digest the four state words and the stream index through splitmix64;
	// each absorb step is a full avalanche, so nearby (state, i) pairs give
	// decorrelated seeds.
	d := NewSplitMix64(r.s[0])
	d.state ^= d.Next() ^ r.s[1]
	d.state ^= d.Next() ^ r.s[2]
	d.state ^= d.Next() ^ r.s[3]
	d.state ^= d.Next() ^ (i+1)*0x9e3779b97f4a7c15
	return New(d.Next())
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// It uses Lemire's multiply-shift rejection method, which is unbiased.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	un := uint64(n)
	hi, lo := bits.Mul64(r.Uint64(), un)
	if lo < un {
		thresh := -un % un
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), un)
		}
	}
	return int(hi)
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normally distributed float64 using the
// Marsaglia polar method.
func (r *Source) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * sqrt(-2*ln(s)/s)
	}
}

// Perm returns a uniformly random permutation of [0, n) as a slice.
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes xs in place using the Fisher-Yates algorithm.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// sqrt and ln are tiny local implementations so that this package has zero
// dependencies beyond math/bits; they are only used by NormFloat64, which is
// not on any hot path.

func sqrt(x float64) float64 {
	if x < 0 {
		return nan()
	}
	if x == 0 {
		return 0
	}
	z := x
	for i := 0; i < 32; i++ {
		z = (z + x/z) / 2
	}
	return z
}

func ln(x float64) float64 {
	if x <= 0 {
		return nan()
	}
	// Normalize x into [1, 2) and accumulate ln 2 per halving/doubling.
	const ln2 = 0.6931471805599453
	k := 0
	for x >= 2 {
		x /= 2
		k++
	}
	for x < 1 {
		x *= 2
		k--
	}
	// atanh series: ln x = 2 atanh((x-1)/(x+1)).
	y := (x - 1) / (x + 1)
	y2 := y * y
	term := y
	sum := 0.0
	for i := 1; i < 40; i += 2 {
		sum += term / float64(i)
		term *= y2
	}
	return 2*sum + float64(k)*ln2
}

func nan() float64 {
	var zero float64
	return zero / zero
}
