package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values for seed 0 from the splitmix64 reference
	// implementation (Vigna).
	sm := NewSplitMix64(0)
	want := []uint64{
		0xe220a8397b1dcdaf,
		0x6e789e6aa1b965f4,
		0x06c45d188009454f,
		0xf88bb8a8724c81ec,
		0x1b39896a51a8749b,
	}
	for i, w := range want {
		if got := sm.Next(); got != w {
			t.Fatalf("splitmix64[%d] = %#x, want %#x", i, got, w)
		}
	}
}

func TestSplitMix64SeedSensitivity(t *testing.T) {
	a := NewSplitMix64(1).Next()
	b := NewSplitMix64(2).Next()
	if a == b {
		t.Fatalf("seeds 1 and 2 produced identical first outputs %#x", a)
	}
}

func TestSourceDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("stream diverged at %d: %#x vs %#x", i, x, y)
		}
	}
}

func TestSourceDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds matched %d/100 outputs", same)
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Fork()
	// Child must be unaffected by further parent draws.
	childCopy := *child
	for i := 0; i < 10; i++ {
		parent.Uint64()
	}
	for i := 0; i < 100; i++ {
		if child.Uint64() != childCopy.Uint64() {
			t.Fatalf("child stream affected by parent draws at %d", i)
		}
	}
}

func TestForkReproducible(t *testing.T) {
	c1 := New(9).Fork()
	c2 := New(9).Fork()
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatalf("forks of identical parents diverged at %d", i)
		}
	}
}

func TestSubstreamPureOfStateAndIndex(t *testing.T) {
	// Same parent state + same index => same stream, independent of the
	// order substreams are derived in and of later parent draws.
	a := New(11)
	b := New(11)
	s3a := a.Substream(3)
	_ = a.Substream(0) // derivation order must not matter
	s0b := b.Substream(0)
	_ = s0b
	s3b := b.Substream(3)
	for i := 0; i < 100; i++ {
		if s3a.Uint64() != s3b.Uint64() {
			t.Fatalf("substream 3 depends on derivation order (draw %d)", i)
		}
	}
	// Deriving must not advance the parent.
	p1, p2 := New(11), New(11)
	_ = p1.Substream(42)
	for i := 0; i < 100; i++ {
		if p1.Uint64() != p2.Uint64() {
			t.Fatalf("Substream advanced the parent (draw %d)", i)
		}
	}
}

func TestSubstreamsDistinct(t *testing.T) {
	parent := New(5)
	seen := map[uint64]uint64{}
	for i := uint64(0); i < 256; i++ {
		v := parent.Substream(i).Uint64()
		if j, dup := seen[v]; dup {
			t.Fatalf("substreams %d and %d share first draw %x", j, i, v)
		}
		seen[v] = i
	}
	// And substreams differ from the parent's own stream.
	p := New(5)
	if p.Substream(0).Uint64() == p.Uint64() {
		t.Fatal("substream 0 aliases the parent stream")
	}
}

func TestSubstreamShiftsWithParentState(t *testing.T) {
	p := New(17)
	before := p.Substream(1).Uint64()
	p.Uint64()
	after := p.Substream(1).Uint64()
	if before == after {
		t.Fatal("substream family did not change after advancing the parent")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 10, 1000, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(11)
	const n = 10
	const draws = 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := draws / n
	for i, c := range counts {
		if c < want*9/10 || c > want*11/10 {
			t.Fatalf("bucket %d count %d far from expected %d", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	sum := 0.0
	const draws = 100000
	for i := 0; i < draws; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		sum += f
	}
	mean := sum / draws
	if mean < 0.49 || mean > 0.51 {
		t.Fatalf("Float64 mean %v far from 0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(13)
	for _, n := range []int{0, 1, 2, 5, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	r := New(17)
	const n = 5
	counts := make([]int, n)
	const draws = 50000
	for i := 0; i < draws; i++ {
		counts[r.Perm(n)[0]]++
	}
	want := draws / n
	for i, c := range counts {
		if c < want*85/100 || c > want*115/100 {
			t.Fatalf("first element %d count %d far from %d", i, c, want)
		}
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	r := New(19)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make([]bool, len(xs))
	for _, v := range xs {
		if seen[v] {
			t.Fatalf("shuffle duplicated %d: %v", v, xs)
		}
		seen[v] = true
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(23)
	const draws = 200000
	sum, sum2 := 0.0, 0.0
	for i := 0; i < draws; i++ {
		x := r.NormFloat64()
		sum += x
		sum2 += x * x
	}
	mean := sum / draws
	variance := sum2/draws - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance %v too far from 1", variance)
	}
}

func TestLocalSqrtAgainstMath(t *testing.T) {
	for _, x := range []float64{0, 1e-9, 0.25, 1, 2, 9, 1e6} {
		got := sqrt(x)
		want := math.Sqrt(x)
		if math.Abs(got-want) > 1e-9*(1+want) {
			t.Fatalf("sqrt(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestLocalLnAgainstMath(t *testing.T) {
	for _, x := range []float64{1e-6, 0.5, 1, 2, 2.718281828, 10, 12345.678} {
		got := ln(x)
		want := math.Log(x)
		if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
			t.Fatalf("ln(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestQuickIntnAlwaysInRange(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		r := New(seed)
		v := r.Intn(n)
		return v >= 0 && v < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickForkDeterministic(t *testing.T) {
	f := func(seed uint64) bool {
		a := New(seed).Fork().Uint64()
		b := New(seed).Fork().Uint64()
		return a == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink = r.Intn(1000)
	}
	_ = sink
}
