package kba

import (
	"testing"

	"sweepsched/internal/lb"
	"sweepsched/internal/mesh"
	"sweepsched/internal/quadrature"
	"sweepsched/internal/sched"
)

func TestFactorNear(t *testing.T) {
	cases := map[int][2]int{
		1:  {1, 1},
		2:  {2, 1},
		4:  {2, 2},
		6:  {3, 2},
		12: {4, 3},
		7:  {7, 1},
		16: {4, 4},
	}
	for m, want := range cases {
		px, py := factorNear(m)
		if px != want[0] || py != want[1] {
			t.Fatalf("factorNear(%d) = (%d,%d), want %v", m, px, py, want)
		}
		if px*py != m {
			t.Fatalf("factorNear(%d) not a factorization", m)
		}
	}
}

func TestColumnAssignment(t *testing.T) {
	a, err := ColumnAssignment(4, 4, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(48, 4); err != nil {
		t.Fatal(err)
	}
	// Column property: same (i,j) across all k maps to the same processor.
	for j := 0; j < 4; j++ {
		for i := 0; i < 4; i++ {
			p := a[j*4+i]
			for k := 1; k < 3; k++ {
				if a[(k*4+j)*4+i] != p {
					t.Fatalf("column (%d,%d) split across processors", i, j)
				}
			}
		}
	}
	// Balanced tiles: 4 procs × 12 cells each.
	counts := make([]int, 4)
	for _, p := range a {
		counts[p]++
	}
	for p, c := range counts {
		if c != 12 {
			t.Fatalf("processor %d holds %d cells, want 12", p, c)
		}
	}
}

func TestColumnAssignmentErrors(t *testing.T) {
	if _, err := ColumnAssignment(0, 1, 1, 1); err == nil {
		t.Fatal("bad dims accepted")
	}
	if _, err := ColumnAssignment(2, 2, 2, 0); err == nil {
		t.Fatal("m=0 accepted")
	}
}

func TestKBANearOptimalOnRegularGrid(t *testing.T) {
	// Related-work sanity (§2): KBA is essentially optimal on regular
	// meshes. On an 8x8x8 grid with 8 octant directions and 4 processors,
	// the makespan should be within a small factor of the load bound.
	nx, ny, nz := 8, 8, 8
	msh := mesh.RegularHex(nx, ny, nz)
	dirs, err := quadrature.Diagonals(8)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := sched.NewInstance(msh, dirs, 4)
	if err != nil {
		t.Fatal(err)
	}
	assign, err := ColumnAssignment(nx, ny, nz, 4)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Schedule(inst, assign)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	ratio := lb.Ratio(s.Makespan, inst)
	if ratio > 1.6 {
		t.Fatalf("KBA ratio %v > 1.6 on a regular grid", ratio)
	}
}

func TestIdealMakespanScales(t *testing.T) {
	// Doubling processors should not increase the ideal makespan.
	prev := IdealMakespan(16, 16, 16, 1, 8)
	for _, m := range []int{2, 4, 8, 16} {
		cur := IdealMakespan(16, 16, 16, m, 8)
		if cur > prev {
			t.Fatalf("ideal makespan grew from %d to %d at m=%d", prev, cur, m)
		}
		prev = cur
	}
}
