package kba

import (
	"fmt"
	"sort"

	"sweepsched/internal/sched"
)

// AnglesetOrdering selects the order in which anglesets enter the KBA
// pipeline. Adams et al. ("Provably Optimal Parallel Transport Sweeps
// on Semi-Structured Grids") and chi-tech's angleset scheduler both
// treat this as a tunable: FIFO launches anglesets in index order,
// DepthOfGraph launches deepest-first so the longest critical path
// starts draining earliest and shorter anglesets fill its pipeline
// bubbles.
type AnglesetOrdering int

const (
	FIFO AnglesetOrdering = iota
	DepthOfGraph
)

func (o AnglesetOrdering) String() string {
	switch o {
	case FIFO:
		return "fifo"
	case DepthOfGraph:
		return "depth_of_graph"
	}
	return fmt.Sprintf("AnglesetOrdering(%d)", int(o))
}

// SchedulePipelined runs the KBA pipeline with angleset aggregation:
// each angleset's tasks carry its representative DAG's level priorities
// offset by the angleset's pipeline stage, so the list scheduler drains
// anglesets through the processor tiling in stage order while letting a
// later angleset's wavefront start as soon as the earlier one's tail
// frees its processors — the multi-angleset pipelining of the
// semi-structured sweep schedulers. The stage order is the given
// ordering over groups (DepthOfGraph: representative depth descending,
// ties by group index). The instance must be built on the matching
// regular hex mesh with the column assignment, as in Schedule.
func SchedulePipelined(inst *sched.Instance, assign sched.Assignment, groups [][]int32, ordering AnglesetOrdering) (*sched.Schedule, error) {
	if err := sched.ValidateAnglesets(groups, inst.K()); err != nil {
		return nil, err
	}
	A := len(groups)
	order := make([]int, A)
	for a := range order {
		order[a] = a
	}
	if ordering == DepthOfGraph {
		sort.SliceStable(order, func(x, y int) bool {
			dx := inst.DAGs[groups[order[x]][0]].NumLevels
			dy := inst.DAGs[groups[order[y]][0]].NumLevels
			return dx > dy
		})
	}
	stage := make([]int64, A)
	for s, a := range order {
		stage[a] = int64(s)
	}
	// A stride of max depth + 1 keeps stage bands disjoint: within a
	// band the wavefront order is the plain KBA level order.
	stride := int64(1)
	for _, g := range groups {
		if d := int64(inst.DAGs[g[0]].NumLevels); d >= stride {
			stride = d + 1
		}
	}
	n := int32(inst.N())
	aggPrio := make(sched.Priorities, int(n)*A)
	for a, g := range groups {
		d := inst.DAGs[g[0]]
		base := int32(a) * n
		off := stage[a] * stride
		for v := int32(0); v < n; v++ {
			aggPrio[base+v] = off + int64(d.Level[v])
		}
	}
	ws := sched.GetWorkspace(inst)
	defer ws.Release()
	dst := &sched.Schedule{}
	if err := sched.ListScheduleAnglesetInto(ws, dst, inst, assign, groups, aggPrio, nil); err != nil {
		return nil, err
	}
	return dst, nil
}
