package kba

import (
	"testing"

	"sweepsched/internal/mesh"
	"sweepsched/internal/quadrature"
	"sweepsched/internal/sched"
	"sweepsched/internal/verify"
)

// pipelineFixture: a regular hex grid with octant anglesets and the KBA
// column tiling — the semi-structured setting SchedulePipelined models.
func pipelineFixture(t *testing.T, nx, k, m int) (*sched.Instance, sched.Assignment, [][]int32) {
	t.Helper()
	msh := mesh.RegularHex(nx, nx, nx)
	dirs, err := quadrature.Octant(k)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := sched.NewInstance(msh, dirs, m)
	if err != nil {
		t.Fatal(err)
	}
	assign, err := ColumnAssignment(nx, nx, nx, m)
	if err != nil {
		t.Fatal(err)
	}
	groups, err := quadrature.AnglesetsByOctant(k)
	if err != nil {
		t.Fatal(err)
	}
	return inst, assign, groups
}

// TestSchedulePipelined: both orderings produce valid schedules that the
// aggregated-schedule auditor accepts, and pipelining anglesets through
// the tiling beats the worst case of draining them strictly one after
// another (k directions × per-sweep ideal with no overlap).
func TestSchedulePipelined(t *testing.T) {
	nx, k, m := 6, 16, 4
	inst, assign, groups := pipelineFixture(t, nx, k, m)
	serial := k * int(IdealMakespan(nx, nx, nx, m, 1))
	for _, ord := range []AnglesetOrdering{FIFO, DepthOfGraph} {
		s, err := SchedulePipelined(inst, assign, groups, ord)
		if err != nil {
			t.Fatalf("%s: %v", ord, err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", ord, err)
		}
		if err := verify.Schedule(inst, s, verify.Opts{Anglesets: groups}); err != nil {
			t.Fatalf("%s: auditor rejects pipeline schedule: %v", ord, err)
		}
		if s.Makespan >= serial {
			t.Fatalf("%s: makespan %d no better than fully serial anglesets %d", ord, s.Makespan, serial)
		}
	}
}

// TestSchedulePipelinedOrderings: on a uniform hex grid every octant's
// representative has the same depth, so DepthOfGraph must coincide with
// FIFO (the sort is stable); and the ordering names are stable strings
// used in CLI flags and observability output.
func TestSchedulePipelinedOrderings(t *testing.T) {
	inst, assign, groups := pipelineFixture(t, 4, 8, 4)
	a, err := SchedulePipelined(inst, assign, groups, FIFO)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SchedulePipelined(inst, assign, groups, DepthOfGraph)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan {
		t.Fatalf("equal-depth anglesets: FIFO makespan %d != DepthOfGraph %d", a.Makespan, b.Makespan)
	}
	for i := range a.Start {
		if a.Start[i] != b.Start[i] {
			t.Fatalf("equal-depth anglesets diverge at task %d", i)
		}
	}
	if FIFO.String() != "fifo" || DepthOfGraph.String() != "depth_of_graph" {
		t.Fatalf("ordering names changed: %q, %q", FIFO, DepthOfGraph)
	}
	if got := AnglesetOrdering(9).String(); got != "AnglesetOrdering(9)" {
		t.Fatalf("unknown ordering stringer: %q", got)
	}
}

// TestSchedulePipelinedRejects: partition validation happens before any
// scheduling work.
func TestSchedulePipelinedRejects(t *testing.T) {
	inst, assign, _ := pipelineFixture(t, 4, 8, 4)
	if _, err := SchedulePipelined(inst, assign, [][]int32{{0, 1}}, FIFO); err == nil {
		t.Fatal("partial partition accepted")
	}
}
