// Package kba implements a KBA-style (Koch-Baker-Alcouffe, paper ref [6])
// sweep schedule for regular hexahedral grids. KBA decomposes the grid into
// columns of cells along the sweep axis, assigns columns to processors in a
// 2-D block layout, and pipelines the diagonal wavefront; it is essentially
// optimal on very regular meshes, which makes it the sanity baseline for
// the schedulers on unstructured meshes.
package kba

import (
	"fmt"

	"sweepsched/internal/sched"
)

// ColumnAssignment assigns the cells of an nx×ny×nz regular hex mesh (cell
// id (k·ny + j)·nx + i, as produced by mesh.RegularHex) to m processors by
// partitioning the xy plane into m contiguous tiles (px × py grid chosen as
// square as possible) and giving each processor all z-columns of its tile —
// the classic KBA column decomposition.
func ColumnAssignment(nx, ny, nz, m int) (sched.Assignment, error) {
	if nx <= 0 || ny <= 0 || nz <= 0 {
		return nil, fmt.Errorf("kba: bad dims %dx%dx%d", nx, ny, nz)
	}
	if m <= 0 {
		return nil, fmt.Errorf("kba: need m > 0, got %d", m)
	}
	px, py := factorNear(m)
	assign := make(sched.Assignment, nx*ny*nz)
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				ti := i * px / nx
				tj := j * py / ny
				if ti >= px {
					ti = px - 1
				}
				if tj >= py {
					tj = py - 1
				}
				assign[(k*ny+j)*nx+i] = int32(tj*px + ti)
			}
		}
	}
	return assign, nil
}

// factorNear returns the factor pair (px, py) of m with px ≥ py and px/py
// minimized (the most square tiling).
func factorNear(m int) (px, py int) {
	py = 1
	for f := 1; f*f <= m; f++ {
		if m%f == 0 {
			py = f
		}
	}
	return m / py, py
}

// Schedule runs the KBA pipeline as level-priority list scheduling over the
// given instance (which must be built on the matching regular hex mesh)
// with the column assignment. Level priorities reproduce the diagonal
// wavefront order exactly on regular grids.
func Schedule(inst *sched.Instance, assign sched.Assignment) (*sched.Schedule, error) {
	n := int32(inst.N())
	prio := make(sched.Priorities, inst.NTasks())
	for i, d := range inst.DAGs {
		base := int32(i) * n
		for v := int32(0); v < n; v++ {
			prio[base+v] = int64(d.Level[v])
		}
	}
	return sched.ListSchedule(inst, assign, prio)
}

// IdealMakespan returns the textbook KBA makespan for an nx×ny×nz grid
// swept in k octant directions on a px×py processor tiling: each direction
// costs roughly nz·(nx/px)·(ny/py) steps of work per processor after a
// pipeline fill of (px−1)+(py−1) block-steps. It is a coarse model used
// only to sanity-check the simulated schedule's scaling.
func IdealMakespan(nx, ny, nz, m, k int) int {
	px, py := factorNear(m)
	blockWork := (nx + px - 1) / px * ((ny + py - 1) / py) * nz
	fill := (px - 1) + (py - 1)
	return k*blockWork + fill*blockWork
}
