package sweepsched_test

// Property test: every scheduler over a grid of (family, scale, k, m, seed)
// configurations must produce schedules satisfying the three feasibility
// constraints of §3 — precedence within every direction DAG, one task per
// processor per step, every copy of a cell on one processor — and a
// makespan no smaller than each §4 lower bound.

import (
	"fmt"
	"testing"

	"sweepsched"
)

func TestScheduleInvariants(t *testing.T) {
	type config struct {
		family string
		scale  float64
		k, m   int
		seed   uint64
	}
	var grid []config
	for _, family := range []string{"tetonly", "long", "prismtet"} {
		for _, km := range [][2]int{{4, 4}, {8, 16}} {
			for _, seed := range []uint64{1, 2} {
				grid = append(grid, config{family, 0.008, km[0], km[1], seed})
			}
		}
	}
	for _, c := range grid {
		p, err := sweepsched.NewProblemFromFamily(c.family, c.scale, c.k, c.m, c.seed)
		if err != nil {
			t.Fatalf("%+v: %v", c, err)
		}
		bounds := p.Bounds()
		for _, alg := range sweepsched.Schedulers() {
			t.Run(fmt.Sprintf("%s/k=%d/m=%d/seed=%d/%s", c.family, c.k, c.m, c.seed, alg), func(t *testing.T) {
				res, err := p.Schedule(alg, sweepsched.ScheduleOptions{Seed: c.seed * 31, Workers: 4})
				if err != nil {
					t.Fatal(err)
				}
				// Schedule() already validates precedence and
				// one-task-per-processor-per-step; re-run the validator
				// explicitly so this test stands alone if that ever changes.
				if err := res.Schedule.Validate(); err != nil {
					t.Fatalf("invariants violated: %v", err)
				}
				// Same-processor-per-cell is structural (assignments map
				// cells, not tasks); confirm via the public accessor that
				// every cell has exactly one in-range processor.
				for v := 0; v < p.N(); v++ {
					if pr := res.Processor(v); pr < 0 || pr >= p.M() {
						t.Fatalf("cell %d on processor %d (m=%d)", v, pr, p.M())
					}
				}
				// Makespan dominates every §4 lower bound.
				if float64(res.Metrics.Makespan) < bounds.Load {
					t.Fatalf("makespan %d below load bound %.2f", res.Metrics.Makespan, bounds.Load)
				}
				if res.Metrics.Makespan < bounds.PerCell {
					t.Fatalf("makespan %d below per-cell bound %d", res.Metrics.Makespan, bounds.PerCell)
				}
				if res.Metrics.Makespan < bounds.CriticalPath {
					t.Fatalf("makespan %d below critical-path bound %d", res.Metrics.Makespan, bounds.CriticalPath)
				}
				if res.Metrics.Makespan < bounds.Max() {
					t.Fatalf("makespan %d below combined bound %d", res.Metrics.Makespan, bounds.Max())
				}
			})
		}
	}
}
