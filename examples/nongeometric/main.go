// Nongeometric: the algorithms need no geometry (paper §2 — "applicable
// even to non-geometric instances"). This example runs the scheduler lineup
// on mesh-free instances: independent random chains, random layered DAGs,
// and a "heuristic trap" where every direction funnels through the same
// cell groups; then it computes a true optimum by exhaustive search on a
// tiny instance to show the real approximation ratio behind the nk/m
// yardstick. Run with:
//
//	go run ./examples/nongeometric
package main

import (
	"fmt"
	"log"

	"sweepsched"
)

func main() {
	fmt.Println("schedulers on non-geometric instances (n=600, k=8, m=8, ratios to nk/m):")
	fmt.Printf("%-16s", "instance")
	algs := []sweepsched.Scheduler{
		sweepsched.RandomDelaysPriority, sweepsched.Level, sweepsched.Descendant, sweepsched.DFDS,
	}
	for _, a := range algs {
		fmt.Printf("  %22s", a)
	}
	fmt.Println()
	for _, kind := range []sweepsched.NonGeometricKind{
		sweepsched.RandomChains, sweepsched.LayeredRandom, sweepsched.HeuristicTrap,
	} {
		p, err := sweepsched.NewProblemNonGeometric(kind, 600, 8, 8, 11)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s", kind)
		for _, alg := range algs {
			res, err := p.Schedule(alg, sweepsched.ScheduleOptions{Seed: 5})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %22.3f", res.Ratio)
		}
		fmt.Println()
	}

	// True optimum on a tiny instance: the paper can only report makespan
	// against the nk/m lower bound ("we do not know the value of the
	// optimal solution"); exhaustive search on 4 cells × 3 chains tells us
	// how much of that gap is lower-bound slack.
	tiny, err := sweepsched.NewProblemNonGeometric(sweepsched.RandomChains, 4, 3, 2, 3)
	if err != nil {
		log.Fatal(err)
	}
	optimal, err := tiny.ExactOptimal()
	if err != nil {
		log.Fatal(err)
	}
	res, err := tiny.Schedule(sweepsched.RandomDelaysPriority, sweepsched.ScheduleOptions{Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntiny instance (4 cells × 3 chain directions, 2 processors):\n")
	fmt.Printf("  exact OPT = %d, algorithm makespan = %d (true ratio %.3f)\n",
		optimal, res.Metrics.Makespan, float64(res.Metrics.Makespan)/float64(optimal))
	fmt.Printf("  nk/m lower bound = %.1f — %.0f%% of the nk/m 'ratio' here is bound slack\n",
		float64(tiny.Tasks())/float64(tiny.M()),
		100*(1-(float64(tiny.Tasks())/float64(tiny.M()))/float64(optimal)))
}
