// Partitioning: the §5.1 communication trade-off. Assigning each cell to a
// random processor gives the best makespan but makes almost every DAG edge
// interprocessor (C1 ≈ (m-1)/m of all edges). Partitioning the mesh into
// blocks with the multilevel partitioner and assigning processors per block
// slashes C1 while barely moving the makespan; C2 (synchronous comm rounds)
// is much smaller than C1 and fairly insensitive to block size. Run with:
//
//	go run ./examples/partitioning
package main

import (
	"fmt"
	"log"

	"sweepsched"
)

func main() {
	const (
		k = 24
		m = 64
	)
	p, err := sweepsched.NewProblemFromFamily("tetonly", 0.1, k, m, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mesh tetonly: n=%d, k=%d, m=%d\n", p.N(), k, m)
	fmt.Println("(once #blocks falls near or below m, load balance — and the makespan —")
	fmt.Println(" degrades; the paper's 31k-cell mesh keeps #blocks >> m at block 64)")
	fmt.Println()
	fmt.Printf("%9s  %8s  %9s  %7s  %9s  %8s  %8s\n",
		"block", "#blocks", "makespan", "ratio", "C1", "C2", "C1 drop")

	var baseC1 int64
	for _, bs := range []int{1, 4, 16, 64, 256, 1024} {
		res, err := p.Schedule(sweepsched.RandomDelaysPriority, sweepsched.ScheduleOptions{
			BlockSize: bs,
			Seed:      2,
		})
		if err != nil {
			log.Fatal(err)
		}
		if bs == 1 {
			baseC1 = res.Metrics.C1
		}
		drop := float64(baseC1) / float64(res.Metrics.C1)
		nBlocks := (p.N() + bs - 1) / bs
		fmt.Printf("%9d  %8d  %9d  %7.3f  %9d  %8d  %7.1fx\n",
			bs, nBlocks, res.Metrics.Makespan, res.Ratio, res.Metrics.C1, res.Metrics.C2, drop)
	}
	fmt.Println("\npaper §5.1 observation 2: block partitioning cuts the number of")
	fmt.Println("interprocessor edges sharply while the makespan rises only slightly.")
}
