// Transport: a discrete-ordinates (S_N) radiation transport solve — the
// paper's motivating application — driven by a sweep schedule. Source
// iteration alternates transport sweeps (one per direction, in the
// schedule's order) with a scattering-source update. The example solves the
// same problem twice: serially, and with one goroutine per scheduled
// processor exchanging angular fluxes over channels; the two runs are
// bitwise identical. Run with:
//
//	go run ./examples/transport
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"sweepsched"
)

func main() {
	p, err := sweepsched.NewProblemFromFamily("well_logging", 0.05, 8, 16, 7)
	if err != nil {
		log.Fatal(err)
	}
	res, err := p.Schedule(sweepsched.RandomDelaysPriority, sweepsched.ScheduleOptions{
		BlockSize: 32,
		Seed:      3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("S_N transport on %d cells × %d directions, schedule: %d processors, makespan %d (ratio %.2f)\n",
		p.N(), p.K(), p.M(), res.Metrics.Makespan, res.Ratio)

	cfg := sweepsched.TransportConfig{
		SigmaT: 1.0,  // total cross-section
		SigmaS: 0.6,  // scattering (must stay below SigmaT)
		Source: 1.0,  // uniform external source
		Tol:    1e-9, // scalar-flux convergence threshold
	}

	t0 := time.Now()
	serial, err := p.SolveTransport(res, cfg)
	if err != nil {
		log.Fatal(err)
	}
	serialTime := time.Since(t0)

	t0 = time.Now()
	parallel, err := p.SolveTransportParallel(res, cfg)
	if err != nil {
		log.Fatal(err)
	}
	parallelTime := time.Since(t0)

	if serial.Iterations != parallel.Iterations {
		log.Fatalf("iteration mismatch: %d vs %d", serial.Iterations, parallel.Iterations)
	}
	for v := range serial.Phi {
		if serial.Phi[v] != parallel.Phi[v] {
			log.Fatalf("cell %d: serial %v != parallel %v", v, serial.Phi[v], parallel.Phi[v])
		}
	}

	mean, min, max := fluxStats(serial.Phi)
	fmt.Printf("converged in %d source iterations (residual %.2e)\n", serial.Iterations, serial.Residual)
	fmt.Printf("scalar flux: mean=%.4f min=%.4f max=%.4f\n", mean, min, max)
	fmt.Printf("serial sweep executor:   %v\n", serialTime.Round(time.Millisecond))
	fmt.Printf("parallel sweep executor: %v (%d goroutine processors, bitwise-identical flux)\n",
		parallelTime.Round(time.Millisecond), p.M())
}

func fluxStats(phi []float64) (mean, min, max float64) {
	min, max = math.Inf(1), math.Inf(-1)
	for _, f := range phi {
		mean += f
		if f < min {
			min = f
		}
		if f > max {
			max = f
		}
	}
	mean /= float64(len(phi))
	return mean, min, max
}
