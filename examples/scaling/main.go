// Scaling: reproduce the paper's headline scaling observation interactively
// — the makespan of "Random Delays with Priorities" stays within 3·nk/m as
// the processor count grows (linear speedup), while plain "Random Delays"
// degrades at high processor counts (Figure 2(c)). Run with:
//
//	go run ./examples/scaling
package main

import (
	"fmt"
	"log"

	"sweepsched"
)

func main() {
	const k = 24
	p1, err := sweepsched.NewProblemFromFamily("long", 0.05, k, 1, 9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mesh long: n=%d cells, k=%d directions (nk = %d tasks), critical path D=%d\n",
		p1.N(), k, p1.Tasks(), p1.Bounds().CriticalPath)
	fmt.Println("(ratio* uses the stronger bound max(nk/m, k, D); once nk/m falls to D the")
	fmt.Println(" load bound stops binding — the paper's meshes are 20x larger, so its nk/m")
	fmt.Println(" stays binding through 512 processors)")
	fmt.Println()
	fmt.Printf("%6s  %10s  %12s %8s  %12s %8s %8s  %9s\n",
		"m", "lb=nk/m", "rd_makespan", "rd_ratio", "rdp_makespan", "rdp_ratio", "ratio*", "speedup")

	serial := 0
	for _, m := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512} {
		p, err := sweepsched.NewProblemFromFamily("long", 0.05, k, m, 9)
		if err != nil {
			log.Fatal(err)
		}
		rd, err := p.Schedule(sweepsched.RandomDelays, sweepsched.ScheduleOptions{Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		rdp, err := p.Schedule(sweepsched.RandomDelaysPriority, sweepsched.ScheduleOptions{Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		if m == 1 {
			serial = rdp.Metrics.Makespan
		}
		lb := float64(p.Tasks()) / float64(m)
		strong := float64(rdp.Metrics.Makespan) / float64(p.Bounds().Max())
		fmt.Printf("%6d  %10.1f  %12d %8.3f  %12d %8.3f %8.3f  %8.1fx\n",
			m, lb,
			rd.Metrics.Makespan, rd.Ratio,
			rdp.Metrics.Makespan, rdp.Ratio, strong,
			float64(serial)/float64(rdp.Metrics.Makespan))
	}
	fmt.Println("\npaper §5.1: makespan was always at most 3·nk/m, i.e. linear speedup;")
	fmt.Println("priorities beat the layered algorithm increasingly with m (up to 4x).")
}
