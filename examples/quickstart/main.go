// Quickstart: build a sweep-scheduling problem on a synthetic unstructured
// tetrahedral mesh, run the paper's Algorithm 2 ("Random Delays with
// Priorities"), and print the schedule quality against the nk/m lower
// bound. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"sweepsched"
)

func main() {
	// A tetonly-like mesh at 10% of the paper's 31,481 cells, swept in 24
	// directions on 64 processors.
	p, err := sweepsched.NewProblemFromFamily("tetonly", 0.10, 24, 64, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instance: %d cells × %d directions = %d tasks on %d processors\n",
		p.N(), p.K(), p.Tasks(), p.M())
	b := p.Bounds()
	fmt.Printf("lower bounds: load nk/m = %.1f, per-cell k = %d, critical path D = %d\n",
		b.Load, b.PerCell, b.CriticalPath)

	// Per-cell random assignment (best makespan, heavy communication).
	cell, err := p.Schedule(sweepsched.RandomDelaysPriority, sweepsched.ScheduleOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nper-cell assignment:  makespan=%5d  ratio=%.3f  C1=%7d  C2=%6d\n",
		cell.Metrics.Makespan, cell.Ratio, cell.Metrics.C1, cell.Metrics.C2)

	// Block assignment (paper §5.1): modestly longer makespan, far fewer
	// interprocessor edges. Block size is chosen so the number of blocks
	// stays well above m (the paper's meshes are 10x larger, so its block
	// sizes of 64-256 have the same blocks-per-processor headroom).
	block, err := p.Schedule(sweepsched.RandomDelaysPriority, sweepsched.ScheduleOptions{
		BlockSize: 16,
		Seed:      1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("block-16 assignment:  makespan=%5d  ratio=%.3f  C1=%7d  C2=%6d\n",
		block.Metrics.Makespan, block.Ratio, block.Metrics.C1, block.Metrics.C2)

	// Replay the block schedule on the message-passing simulator: every
	// precedence is enforced by an actual message or local completion.
	sim, err := p.Simulate(block)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulator confirms: %d steps, %d messages, %d comm rounds\n",
		sim.Steps, sim.TotalMessages, sim.CommRounds)
}
