package sweepsched

import (
	"context"
	"errors"

	"sweepsched/internal/procrun"
)

// ProcRunOptions configures the multi-process sweep executor: durable
// checkpoint directory, heartbeat and reconnect-backoff parameters, and
// the worker binary to spawn.
type ProcRunOptions = procrun.Options

// ProcRunResult is a completed multi-process solve: converged flux, the
// recovery accounting, and the merged worker metrics snapshot.
type ProcRunResult = procrun.RunResult

// ProcRunReport extends the in-process RecoveryReport with socket-level
// events (severs, reconnects).
type ProcRunReport = procrun.Report

// MaybeProcWorker turns the current process into a sweep worker if it
// was spawned by the multi-process orchestrator (re-exec style), never
// returning in that case. Binaries that want to host workers — anything
// calling SolveTransportProcs with the default worker binary — must call
// it first thing in main. A no-op otherwise.
func MaybeProcWorker() { procrun.MaybeWorker() }

// SolveTransportProcs runs the transport source iteration across real
// worker OS processes over localhost TCP: every planned crash in the
// fault plan is delivered as an actual SIGKILL at its barrier step and
// every planned sever as a closed socket, with recovery rolling back to
// the workers' durable on-disk checkpoints. Under any plan that leaves
// at least one worker alive, the converged flux is bitwise-identical to
// the serial SolveTransport.
//
// The problem must have been built with NewProblemFromFamily — workers
// rebuild the mesh locally from its construction recipe, so there is no
// way to ship a caller-provided mesh.
func (p *Problem) SolveTransportProcs(ctx context.Context, res *Result, cfg TransportConfig, plan *FaultPlan, opts ProcRunOptions) (*ProcRunResult, error) {
	if p.recipe == nil {
		return nil, errors.New("sweepsched: multi-process execution needs a family-built problem (workers rebuild the mesh from its construction recipe)")
	}
	return procrun.Run(ctx, res.Schedule, *p.recipe, cfg, plan, opts)
}
