package sweepsched

import (
	"context"
	"errors"
	"testing"
)

func faultTestProblem(t *testing.T) (*Problem, *Result) {
	t.Helper()
	p, err := NewProblemFromFamily("tetonly", 0.02, 8, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Schedule(RandomDelaysPriority, ScheduleOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return p, res
}

func TestScheduleCtxCancelled(t *testing.T) {
	p, _ := faultTestProblem(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.ScheduleCtx(ctx, RandomDelaysPriority, ScheduleOptions{Seed: 5}); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestFaultPlanRoundTripThroughAPI(t *testing.T) {
	p, res := faultTestProblem(t)
	plan := NewFaultPlan(res, FaultSpec{Crashes: 2, Drops: 2}, 11)
	if len(plan.Events) == 0 {
		t.Fatal("empty plan")
	}

	sr, rep, err := p.SimulateFaulty(context.Background(), res, plan)
	if err != nil {
		t.Fatalf("%v (report %s)", err, rep)
	}
	if sr.Steps != rep.StepsExecuted {
		t.Fatalf("steps %d != report %d", sr.Steps, rep.StepsExecuted)
	}
	if rep.Crashes != 2 {
		t.Fatalf("report %s, want 2 crashes applied", rep)
	}

	cfg := TransportConfig{SigmaT: 1, SigmaS: 0.5, Source: 1}
	want, err := p.SolveTransport(res, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := p.SolveTransportFaultTolerant(context.Background(), res, cfg, plan)
	if err != nil {
		t.Fatal(err)
	}
	for v := range want.Phi {
		if got.Phi[v] != want.Phi[v] {
			t.Fatalf("recovered flux differs at cell %d: %g != %g", v, got.Phi[v], want.Phi[v])
		}
	}
}

func TestSolveTransportCtxVariantsCancelled(t *testing.T) {
	p, res := faultTestProblem(t)
	cfg := TransportConfig{SigmaT: 1, SigmaS: 0.5, Source: 1}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.SolveTransportCtx(ctx, res, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("SolveTransportCtx: got %v", err)
	}
	if _, err := p.SolveTransportParallelCtx(ctx, res, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("SolveTransportParallelCtx: got %v", err)
	}
	if _, err := p.SimulateCtx(ctx, res); !errors.Is(err, context.Canceled) {
		t.Fatalf("SimulateCtx: got %v", err)
	}
}
