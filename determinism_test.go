package sweepsched_test

// Race-proof determinism harness (the headline guarantee of the parallel
// per-direction pipeline): for every scheduler, the encoded schedule trace
// must be byte-identical for the same seed no matter how many workers the
// pipeline fans over. Parallel stages write into direction-indexed slots
// and all randomness is drawn from per-direction substreams before any
// fan-out, so Workers must be invisible in the output. Run with -race to
// also catch data races in the fan-out itself.

import (
	"bytes"
	"fmt"
	"testing"

	"sweepsched"
)

// detProblems builds the instances the determinism suite runs on: two mesh
// families plus one non-geometric instance, as small as they can be while
// still exercising block partitioning and every scheduler.
func detProblems(t *testing.T) map[string]*sweepsched.Problem {
	t.Helper()
	probs := map[string]*sweepsched.Problem{}
	for _, fam := range []string{"tetonly", "long"} {
		p, err := sweepsched.NewProblemFromFamily(fam, 0.01, 8, 8, 42)
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		probs[fam] = p
	}
	ng, err := sweepsched.NewProblemNonGeometric(sweepsched.LayeredRandom, 200, 8, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	probs["layered_random"] = ng
	return probs
}

// traceBytes runs one scheduler and returns the encoded trace.
func traceBytes(t *testing.T, p *sweepsched.Problem, alg sweepsched.Scheduler, opts sweepsched.ScheduleOptions) []byte {
	t.Helper()
	res, err := p.Schedule(alg, opts)
	if err != nil {
		t.Fatalf("%s: %v", alg, err)
	}
	var buf bytes.Buffer
	if err := sweepsched.EncodeTrace(&buf, res); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTraceDeterminismAcrossWorkers is the determinism regression test: for
// every scheduler, same seed at Workers=1 and Workers=8 must produce
// byte-identical traces, on two mesh families and one non-geometric
// instance, under per-cell and (for meshes) block assignment.
func TestTraceDeterminismAcrossWorkers(t *testing.T) {
	for name, p := range detProblems(t) {
		blockSizes := []int{1}
		if name != "layered_random" {
			blockSizes = append(blockSizes, 16)
		}
		for _, bs := range blockSizes {
			for _, alg := range sweepsched.Schedulers() {
				t.Run(fmt.Sprintf("%s/block=%d/%s", name, bs, alg), func(t *testing.T) {
					serial := traceBytes(t, p, alg, sweepsched.ScheduleOptions{BlockSize: bs, Seed: 7, Workers: 1})
					parallel := traceBytes(t, p, alg, sweepsched.ScheduleOptions{BlockSize: bs, Seed: 7, Workers: 8})
					if !bytes.Equal(serial, parallel) {
						t.Fatalf("trace differs between Workers=1 (%d bytes) and Workers=8 (%d bytes)",
							len(serial), len(parallel))
					}
					// A different seed must still change the outcome (the
					// byte equality above is not vacuous).
					other := traceBytes(t, p, alg, sweepsched.ScheduleOptions{BlockSize: bs, Seed: 8, Workers: 8})
					if bytes.Equal(serial, other) {
						t.Fatalf("traces for seeds 7 and 8 are identical; determinism check is vacuous")
					}
				})
			}
		}
	}
}

// TestMetricsDeterminismAcrossWorkers pins the reduced metrics (C1 per
// direction, C2 per step range) to the same value for every worker count.
func TestMetricsDeterminismAcrossWorkers(t *testing.T) {
	p, err := sweepsched.NewProblemFromFamily("well_logging", 0.01, 12, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	var ref sweepsched.Result
	for i, workers := range []int{1, 2, 3, 8, 0} {
		res, err := p.Schedule(sweepsched.RandomDelaysPriority, sweepsched.ScheduleOptions{Seed: 5, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = *res
			continue
		}
		if res.Metrics != ref.Metrics {
			t.Fatalf("workers=%d: metrics %+v differ from serial %+v", workers, res.Metrics, ref.Metrics)
		}
	}
}
