// Command sweepsim runs one scheduler on one instance, prints the metrics,
// and optionally replays the schedule on the goroutine-based
// message-passing simulator as an independent feasibility check.
//
// With -faults it re-executes the schedule under a deterministic
// seed-derived fault plan (processor crashes, message drops/delays/
// duplicates) with checkpointed recovery rescheduling, then cross-checks
// the fault-tolerant transport solve against the serial solver bit for
// bit.
//
// Adding -procs moves that execution onto real worker OS processes over
// localhost TCP: planned crashes are delivered as actual kill -9 and
// planned severs (-sever) as closed sockets, with recovery rolling back
// to durable on-disk checkpoints — and the converged flux must still
// match the serial solver bit for bit.
//
// Usage:
//
//	sweepsim -mesh tetonly -k 24 -m 64 -alg random_delays_priority -block 64
//	sweepsim -mesh long -k 8 -m 16 -alg dfds -simulate
//	sweepsim -mesh long -k 8 -m 16 -faults -crash 2 -drop 3 -fault-seed 11
//	sweepsim -mesh tetonly -scale 0.002 -k 8 -m 4 -faults -procs -crash 1 -sever 1
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"sweepsched"
	"sweepsched/internal/cliutil"
)

func main() {
	// If the multi-process executor re-exec'd us as a worker, become one
	// before touching flags (the worker env var carries everything).
	sweepsched.MaybeProcWorker()
	var (
		meshName   = flag.String("mesh", "tetonly", "mesh family")
		meshFile   = flag.String("meshfile", "", "load a sweepmesh file instead of generating -mesh")
		scale      = flag.Float64("scale", 0.05, "mesh scale relative to paper size")
		k          = flag.Int("k", 24, "number of sweep directions")
		m          = flag.Int("m", 64, "number of processors")
		alg        = flag.String("alg", string(sweepsched.RandomDelaysPriority), "scheduler name")
		block      = flag.Int("block", 1, "block size (1 = per-cell random assignment)")
		seed       = flag.Uint64("seed", 1, "random seed")
		sim        = flag.Bool("simulate", false, "replay on the message-passing simulator")
		gantt      = flag.Bool("gantt", false, "print a text Gantt chart of the schedule")
		commC      = flag.Int("c", 0, "uniform communication delay (steps per cross-processor edge)")
		saveTrace  = flag.String("savetrace", "", "write the schedule trace to this path (view with sweepview)")
		weighted   = flag.Bool("weighted", false, "draw log-normal per-cell costs and run the weighted engine")
		weightSeed = flag.Uint64("weights", 0, "seed for the log-normal per-cell cost draw (implies -weighted; default derives from -seed)")
		speedsSpec = flag.String("speeds", "", "comma-separated per-processor speed pattern, cycled over m, e.g. 1,2,4 (implies -weighted; duration = ceil(weight/speed))")
		workers    = flag.Int("workers", 0, "goroutines for per-direction pipeline stages (0 = GOMAXPROCS; output is identical for any value)")
		anglesets  = flag.Int("anglesets", 0, "aggregate directions into about this many octant anglesets (priorities once per angleset on representative DAGs; omit for the per-direction pipeline)")
		doVerify   = flag.Bool("verify", false, "audit the schedule with the internal/verify auditor (independent recomputation of every constraint and metric)")
		verifyN    = flag.Int("verify-every", 1, "with -verify, audit only every Nth scheduling run (1 = every run)")
		doStats    = flag.Bool("stats", false, "print the run's counters and stage timings on exit")
		doFaults   = flag.Bool("faults", false, "execute under an injected fault plan with checkpointed recovery")
		faultSeed  = flag.Uint64("fault-seed", 1, "seed for the fault plan (independent of -seed)")
		nCrash     = flag.Int("crash", 1, "processor crashes to inject (with -faults)")
		nDrop      = flag.Int("drop", 0, "message drops to inject (with -faults)")
		nDelay     = flag.Int("delay", 0, "message delays to inject (with -faults)")
		nDup       = flag.Int("dup", 0, "message duplications to inject (with -faults)")
		nSever     = flag.Int("sever", 0, "worker coordinator sockets to sever (with -faults -procs)")
		doProcs    = flag.Bool("procs", false, "with -faults, execute on real worker OS processes: crashes become kill -9, severs become closed sockets")
		noBatch    = flag.Bool("nobatch", false, "with -faults, run the transport executors on the per-message oracle interconnect instead of batched flux envelopes (converges bitwise-identically; only transmission counts differ)")
		ckptDir    = flag.String("ckptdir", "", "durable checkpoint directory for -procs (default: a temp dir, removed on exit)")
		timeout    = flag.Duration("timeout", 0, "overall deadline for fault-injected runs (0 = none)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if err := cliutil.ValidateVerifyEvery(*verifyN); err != nil {
		fatal(err)
	}
	speeds, err := cliutil.ParseSpeeds(*speedsSpec)
	if err != nil {
		fatal(err)
	}
	// -weights and -speeds only make sense on the weighted engine.
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "weights" || f.Name == "speeds" {
			*weighted = true
		}
	})
	// -anglesets distinguishes "absent" (per-direction) from an explicit
	// value, which must name at least one angleset.
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "anglesets" {
			if err := cliutil.ValidateAnglesets(*anglesets); err != nil {
				fatal(err)
			}
		}
	})
	if err := cliutil.ValidateNoBatch(*noBatch, *doFaults, "add -faults (optionally -procs) to run one"); err != nil {
		fatal(err)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}

	var p *sweepsched.Problem
	if *meshFile != "" {
		f, ferr := os.Open(*meshFile)
		if ferr != nil {
			fatal(ferr)
		}
		msh, derr := sweepsched.DecodeMesh(f)
		f.Close()
		if derr != nil {
			fatal(derr)
		}
		*meshName = msh.Name
		p, err = sweepsched.NewProblemFromMesh(msh, *k, *m)
	} else {
		p, err = sweepsched.NewProblemFromFamily(*meshName, *scale, *k, *m, *seed)
	}
	if err != nil {
		fatal(err)
	}
	bounds := p.Bounds()
	fmt.Printf("instance: mesh=%s n=%d k=%d m=%d tasks=%d\n", *meshName, p.N(), p.K(), p.M(), p.Tasks())
	fmt.Printf("lower bounds: nk/m=%.1f k=%d D=%d (max %d)\n",
		bounds.Load, bounds.PerCell, bounds.CriticalPath, bounds.Max())

	opts := sweepsched.ScheduleOptions{BlockSize: *block, Seed: *seed, Workers: *workers, Verify: *doVerify, VerifyEvery: *verifyN, Anglesets: *anglesets}
	var col *sweepsched.StatsCollector
	if *doStats {
		col = sweepsched.NewStatsCollector()
		opts.Collector = col
		defer func() {
			fmt.Println("-- stats --")
			if err := col.Snapshot().WriteText(os.Stdout); err != nil {
				fatal(err)
			}
		}()
	}

	if *weighted {
		ws := *weightSeed
		if ws == 0 {
			ws = *seed ^ 0x57
		}
		weights := sweepsched.LogNormalWeights(p.N(), 4, 0.75, ws)
		var model *sweepsched.MachineModel
		if len(speeds) > 0 {
			cycled := make([]int32, p.M())
			for i := range cycled {
				cycled[i] = speeds[i%len(speeds)]
			}
			model = &sweepsched.MachineModel{Speeds: cycled}
		}
		wres, err := p.ScheduleWeightedMachine(sweepsched.Scheduler(*alg), opts, weights, model)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("weighted scheduler %s (block=%d, log-normal costs, speeds=%s):\n", *alg, *block, orUniform(*speedsSpec))
		fmt.Printf("  weighted bounds: load=%.1f percell=%d crit=%d (max %d)\n",
			wres.Bounds.Load, wres.Bounds.PerCell, wres.Bounds.CriticalPath, wres.Bounds.Max())
		fmt.Printf("  makespan = %d  (ratio to load bound: %.3f, to max bound: %.3f)\n",
			wres.Makespan, wres.Ratio, wres.StrongRatio)
		if *doVerify {
			fmt.Println("  verify: weighted schedule audit passed (precedence+delays, exclusivity, durations, makespan)")
		}
		return
	}

	var res *sweepsched.Result
	if *commC > 0 {
		res, err = p.ScheduleComm(sweepsched.Scheduler(*alg), opts, *commC)
	} else {
		res, err = p.Schedule(sweepsched.Scheduler(*alg), opts)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("scheduler %s (block=%d, c=%d):\n", *alg, *block, *commC)
	fmt.Printf("  makespan = %d  (ratio to nk/m: %.3f, utilization %.1f%%)\n",
		res.Metrics.Makespan, res.Ratio, 100*res.Utilization())
	fmt.Printf("  C1 (interprocessor edges) = %d\n", res.Metrics.C1)
	fmt.Printf("  C2 (comm rounds)          = %d\n", res.Metrics.C2)
	if *doVerify {
		fmt.Println("  verify: schedule audit passed (precedence, exclusivity, copies, metrics)")
	}

	if *gantt {
		if err := res.RenderGantt(os.Stdout, 16, 100); err != nil {
			fatal(err)
		}
	}

	if *saveTrace != "" {
		f, err := os.Create(*saveTrace)
		if err != nil {
			fatal(err)
		}
		if err := sweepsched.EncodeTrace(f, res); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("trace written to %s\n", *saveTrace)
	}

	if *sim {
		sr, err := p.Simulate(res)
		if err != nil {
			fatal(fmt.Errorf("simulation rejected the schedule: %w", err))
		}
		fmt.Printf("simulator: steps=%d messages=%d rounds=%d — schedule is feasible under message passing\n",
			sr.Steps, sr.TotalMessages, sr.CommRounds)
	}

	if *doFaults {
		ctx := context.Background()
		if *timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *timeout)
			defer cancel()
		}
		spec := sweepsched.FaultSpec{
			Crashes:    *nCrash,
			Drops:      *nDrop,
			Delays:     *nDelay,
			Duplicates: *nDup,
			Severs:     *nSever,
		}
		plan := sweepsched.NewFaultPlan(res, spec, *faultSeed)
		fmt.Printf("fault plan (seed=%d): %s\n", *faultSeed, plan)

		cfg := sweepsched.TransportConfig{SigmaT: 1, SigmaS: 0.5, Source: 1, Verify: *doVerify, NoBatch: *noBatch, Collector: col}
		serial, err := p.SolveTransport(res, cfg)
		if err != nil {
			fatal(err)
		}

		if *doProcs {
			dir := *ckptDir
			if dir == "" {
				tmp, err := os.MkdirTemp("", "sweepsim-ckpt-*")
				if err != nil {
					fatal(err)
				}
				defer os.RemoveAll(tmp)
				dir = tmp
			}
			pres, err := p.SolveTransportProcs(ctx, res, cfg, plan, sweepsched.ProcRunOptions{CkptDir: dir, Collector: col})
			if err != nil {
				fatal(fmt.Errorf("multi-process transport failed: %w", err))
			}
			fmt.Println(pres.Report)
			mismatch := 0
			for v := range serial.Phi {
				if serial.Phi[v] != pres.Phi[v] {
					mismatch++
				}
			}
			if mismatch == 0 {
				fmt.Printf("procrun: flux from %d worker processes bitwise-identical to serial solve (%d cells, %d iterations, %d killed)\n",
					*m, len(pres.Phi), pres.Iterations, len(pres.Report.DeadProcs))
				fmt.Printf("procrun comm: %d logical messages in %d transmissions, %d modeled wire bytes, %d rounds\n",
					pres.Comm.Messages, pres.Comm.Batches, pres.Comm.Bytes, pres.Comm.Rounds)
			} else {
				fatal(fmt.Errorf("procrun: recovered flux differs from serial solve in %d of %d cells", mismatch, len(pres.Phi)))
			}
			if *doStats {
				fmt.Println("-- merged worker stats --")
				if err := pres.Merged.WriteText(os.Stdout); err != nil {
					fatal(err)
				}
			}
			return
		}

		sr, rep, err := p.SimulateFaulty(ctx, res, plan)
		if err != nil {
			fatal(fmt.Errorf("fault-injected simulation failed: %w", err))
		}
		fmt.Printf("faulty simulator: steps=%d messages=%d rounds=%d (fault-free makespan %d, penalty %d steps)\n",
			sr.Steps, sr.TotalMessages, sr.CommRounds, res.Metrics.Makespan, rep.Penalty())
		fmt.Println(rep)

		ft, _, err := p.SolveTransportFaultTolerant(ctx, res, cfg, plan)
		if err != nil {
			fatal(fmt.Errorf("fault-tolerant transport failed: %w", err))
		}
		mismatch := 0
		for v := range serial.Phi {
			if serial.Phi[v] != ft.Phi[v] {
				mismatch++
			}
		}
		if mismatch == 0 {
			fmt.Printf("transport: recovered flux bitwise-identical to serial solve (%d cells, %d iterations)\n",
				len(ft.Phi), ft.Iterations)
			fmt.Printf("transport comm: %d logical messages in %d transmissions, %d modeled wire bytes, %d rounds\n",
				ft.Comm.Messages, ft.Comm.Batches, ft.Comm.Bytes, ft.Comm.Rounds)
		} else {
			fatal(fmt.Errorf("transport: recovered flux differs from serial solve in %d of %d cells", mismatch, len(ft.Phi)))
		}
	}
}

func orUniform(s string) string {
	if s == "" {
		return "uniform"
	}
	return s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweepsim:", err)
	os.Exit(1)
}
