// Command sweepsim runs one scheduler on one instance, prints the metrics,
// and optionally replays the schedule on the goroutine-based
// message-passing simulator as an independent feasibility check.
//
// Usage:
//
//	sweepsim -mesh tetonly -k 24 -m 64 -alg random_delays_priority -block 64
//	sweepsim -mesh long -k 8 -m 16 -alg dfds -simulate
package main

import (
	"flag"
	"fmt"
	"os"

	"sweepsched"
)

func main() {
	var (
		meshName  = flag.String("mesh", "tetonly", "mesh family")
		meshFile  = flag.String("meshfile", "", "load a sweepmesh file instead of generating -mesh")
		scale     = flag.Float64("scale", 0.05, "mesh scale relative to paper size")
		k         = flag.Int("k", 24, "number of sweep directions")
		m         = flag.Int("m", 64, "number of processors")
		alg       = flag.String("alg", string(sweepsched.RandomDelaysPriority), "scheduler name")
		block     = flag.Int("block", 1, "block size (1 = per-cell random assignment)")
		seed      = flag.Uint64("seed", 1, "random seed")
		sim       = flag.Bool("simulate", false, "replay on the message-passing simulator")
		gantt     = flag.Bool("gantt", false, "print a text Gantt chart of the schedule")
		commC     = flag.Int("c", 0, "uniform communication delay (steps per cross-processor edge)")
		saveTrace = flag.String("savetrace", "", "write the schedule trace to this path (view with sweepview)")
		weighted  = flag.Bool("weighted", false, "draw log-normal per-cell costs and run the weighted engine")
		workers   = flag.Int("workers", 0, "goroutines for per-direction pipeline stages (0 = GOMAXPROCS; output is identical for any value)")
	)
	flag.Parse()

	var (
		p   *sweepsched.Problem
		err error
	)
	if *meshFile != "" {
		f, ferr := os.Open(*meshFile)
		if ferr != nil {
			fatal(ferr)
		}
		msh, derr := sweepsched.DecodeMesh(f)
		f.Close()
		if derr != nil {
			fatal(derr)
		}
		*meshName = msh.Name
		p, err = sweepsched.NewProblemFromMesh(msh, *k, *m)
	} else {
		p, err = sweepsched.NewProblemFromFamily(*meshName, *scale, *k, *m, *seed)
	}
	if err != nil {
		fatal(err)
	}
	bounds := p.Bounds()
	fmt.Printf("instance: mesh=%s n=%d k=%d m=%d tasks=%d\n", *meshName, p.N(), p.K(), p.M(), p.Tasks())
	fmt.Printf("lower bounds: nk/m=%.1f k=%d D=%d (max %d)\n",
		bounds.Load, bounds.PerCell, bounds.CriticalPath, bounds.Max())

	opts := sweepsched.ScheduleOptions{BlockSize: *block, Seed: *seed, Workers: *workers}

	if *weighted {
		weights := sweepsched.LogNormalWeights(p.N(), 4, 0.75, *seed^0x57)
		wres, err := p.ScheduleWeighted(sweepsched.Scheduler(*alg), opts, weights)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("weighted scheduler %s (block=%d, log-normal costs):\n", *alg, *block)
		fmt.Printf("  makespan = %d  (ratio to weighted load bound: %.3f)\n", wres.Makespan, wres.Ratio)
		return
	}

	var res *sweepsched.Result
	if *commC > 0 {
		res, err = p.ScheduleComm(sweepsched.Scheduler(*alg), opts, *commC)
	} else {
		res, err = p.Schedule(sweepsched.Scheduler(*alg), opts)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("scheduler %s (block=%d, c=%d):\n", *alg, *block, *commC)
	fmt.Printf("  makespan = %d  (ratio to nk/m: %.3f, utilization %.1f%%)\n",
		res.Metrics.Makespan, res.Ratio, 100*res.Utilization())
	fmt.Printf("  C1 (interprocessor edges) = %d\n", res.Metrics.C1)
	fmt.Printf("  C2 (comm rounds)          = %d\n", res.Metrics.C2)

	if *gantt {
		if err := res.RenderGantt(os.Stdout, 16, 100); err != nil {
			fatal(err)
		}
	}

	if *saveTrace != "" {
		f, err := os.Create(*saveTrace)
		if err != nil {
			fatal(err)
		}
		if err := sweepsched.EncodeTrace(f, res); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("trace written to %s\n", *saveTrace)
	}

	if *sim {
		sr, err := p.Simulate(res)
		if err != nil {
			fatal(fmt.Errorf("simulation rejected the schedule: %w", err))
		}
		fmt.Printf("simulator: steps=%d messages=%d rounds=%d — schedule is feasible under message passing\n",
			sr.Steps, sr.TotalMessages, sr.CommRounds)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweepsim:", err)
	os.Exit(1)
}
