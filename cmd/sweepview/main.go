// Command sweepview renders a saved schedule trace (see cmd/sweepsim
// -savetrace): execution profile, per-processor utilization histogram, and
// a text Gantt chart.
//
// Usage:
//
//	sweepsim -mesh tetonly -k 8 -m 8 -savetrace /tmp/s.trace
//	sweepview /tmp/s.trace
package main

import (
	"flag"
	"fmt"
	"os"

	"sweepsched/internal/sched"
	"sweepsched/internal/trace"
)

func main() {
	var (
		procs = flag.Int("procs", 16, "max processors to draw in the Gantt chart")
		cols  = flag.Int("cols", 100, "max Gantt columns (timesteps are downsampled)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: sweepview [flags] <trace-file>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	s, err := sched.DecodeTrace(f)
	f.Close()
	if err != nil {
		fatal(err)
	}

	p := trace.Compute(s)
	fmt.Printf("schedule: %d tasks on %d processors, makespan %d\n", p.Tasks, p.Processors, p.Makespan)
	fmt.Printf("mean utilization %.1f%%, peak parallelism %d, idle slots %d\n",
		100*p.MeanUtilization, p.PeakParallelism, p.IdleSteps)

	hist := trace.UtilizationHistogram(s)
	fmt.Println("utilization histogram (processors per decile):")
	for b, c := range hist {
		if c == 0 {
			continue
		}
		fmt.Printf("  %3d-%3d%%: %d\n", b*10, b*10+10, c)
	}

	if err := trace.RenderGantt(os.Stdout, s, *procs, *cols); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweepview:", err)
	os.Exit(1)
}
