// Command sweepbench regenerates the paper's figures and tables.
//
// Usage:
//
//	sweepbench -exp fig2a                 # one experiment
//	sweepbench -exp all                   # everything
//	sweepbench -exp speedup -scale 1.0    # paper-size meshes (slow)
//	sweepbench -list                      # available experiment ids
//
// Output is a text table per experiment, with the same rows/series as the
// corresponding figure. See DESIGN.md for the experiment index and
// EXPERIMENTS.md for the recorded paper-vs-measured comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"sweepsched/internal/cliutil"
	"sweepsched/internal/experiments"
	"sweepsched/internal/obs"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment id, or 'all'")
		scale      = flag.Float64("scale", 0.05, "mesh scale relative to paper cell counts (1.0 = paper size)")
		seed       = flag.Uint64("seed", 1, "master random seed")
		trials     = flag.Int("trials", 3, "trials per randomized configuration")
		procs      = flag.String("procs", "2,8,32,128,512", "comma-separated processor counts")
		list       = flag.Bool("list", false, "list experiment ids and exit")
		csv        = flag.Bool("csv", false, "emit CSV tables instead of aligned text")
		workers    = flag.Int("workers", 0, "goroutines for experiment rows and per-direction pipeline stages (0 = GOMAXPROCS; output is identical for any value)")
		anglesets  = flag.Int("anglesets", 0, "run the fig3 harness with priorities aggregated into about this many octant anglesets (omit for the per-direction pipeline)")
		weightSeed = flag.Uint64("weights", 0, "override the weighted experiment's cell-cost draw seed (0 = derive from -seed)")
		speedsSpec = flag.String("speeds", "", "comma-separated per-processor speed pattern for the weighted experiment, cycled over each m, e.g. 1,2,4 (empty = uniform machine)")
		doVerify   = flag.Bool("verify", false, "audit every produced schedule with the internal/verify auditor (fails fast on the first violation)")
		verifyN    = flag.Int("verify-every", 1, "with -verify, audit only every Nth trial (1 = every trial)")
		doStats    = flag.Bool("stats", false, "print accumulated counters and stage timings after the experiments")
		noBatch    = flag.Bool("nobatch", false, "run the comm experiment on the per-message oracle interconnect only, reporting its raw traffic instead of the batched-vs-oracle comparison")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if err := cliutil.ValidateVerifyEvery(*verifyN); err != nil {
		fatal(err)
	}
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "anglesets" {
			if err := cliutil.ValidateAnglesets(*anglesets); err != nil {
				fatal(err)
			}
		}
	})
	if err := cliutil.ValidateNoBatch(*noBatch, *exp == "comm" || *exp == "all", "use -exp comm (or all) to run one"); err != nil {
		fatal(err)
	}

	if *list {
		for _, n := range experiments.Names() {
			fmt.Println(n)
		}
		return
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}

	procList, err := parseProcs(*procs)
	if err != nil {
		fatal(err)
	}
	speeds, err := cliutil.ParseSpeeds(*speedsSpec)
	if err != nil {
		fatal(err)
	}
	cfg := experiments.Config{
		Scale:       *scale,
		Seed:        *seed,
		Trials:      *trials,
		Procs:       procList,
		Out:         os.Stdout,
		CSV:         *csv,
		Workers:     *workers,
		Verify:      *doVerify,
		VerifyEvery: *verifyN,
		Anglesets:   *anglesets,
		Speeds:      speeds,
		WeightSeed:  *weightSeed,
		NoBatch:     *noBatch,
	}
	if *doStats {
		cfg.Collector = obs.New()
	}

	names := []string{*exp}
	switch *exp {
	case "all":
		names = experiments.Names()
	case "paper":
		// Just the artifacts the paper itself plots or states.
		names = []string{"fig2a", "fig2b", "fig2c", "fig3a", "fig3b", "fig3c",
			"speedup", "guarantee", "blocks"}
	}
	for _, name := range names {
		start := time.Now()
		if err := experiments.Run(name, cfg); err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		fmt.Printf("# %s done in %v\n\n", name, time.Since(start).Round(time.Millisecond))
	}
	if cfg.Collector != nil {
		fmt.Println("# stats")
		if err := cfg.Collector.Snapshot().WriteText(os.Stdout); err != nil {
			fatal(err)
		}
	}
}

func parseProcs(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		v, err := strconv.Atoi(p)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad processor count %q", p)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no processor counts in %q", s)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweepbench:", err)
	os.Exit(1)
}
