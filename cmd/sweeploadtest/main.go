// Command sweeploadtest drives the sweepschedd service with many
// concurrent clients over repeated meshes and records the
// throughput/latency/hit-rate trajectory — the millions-of-users
// measurement for the scheduling-as-a-service direction (ROADMAP item
// 1; cf. the relaxed-scheduler throughput framing of Alistarh et al.).
//
// Two phases run back to back with the same client fleet:
//
//	cold — every request names a distinct mesh (unique mesh seed), so
//	       each one pays the full pipeline: mesh generation, skeleton
//	       extraction, k DAG inductions, scheduling;
//	warm — every request is identical, so after one priming request
//	       the schedule tier serves all of them without a single DAG
//	       build.
//
// By default the harness starts an in-process server (with sampled
// audits on) and tears it down at the end; -addr drives an external
// daemon instead. Results (per-phase latency distribution, per-window
// trajectory, server cache/audit counters, warm-over-cold speedup) are
// printed and optionally written as JSON with -out (see
// BENCH_PR6.json).
//
// Usage:
//
//	sweeploadtest -clients 8 -requests 25 -mesh tetonly -scale 0.05 \
//	              -k 24 -m 64 -out BENCH_PR6.json
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"time"

	"sweepsched/internal/cliutil"
	"sweepsched/internal/service"
)

func main() {
	var (
		addr      = flag.String("addr", "", "base URL of a running daemon (empty = start an in-process server)")
		clients   = flag.Int("clients", 8, "concurrent clients")
		requests  = flag.Int("requests", 25, "requests per client per phase")
		meshName  = flag.String("mesh", "tetonly", "paper mesh family")
		scale     = flag.Float64("scale", 0.05, "mesh scale relative to paper size")
		k         = flag.Int("k", 24, "sweep directions")
		m         = flag.Int("m", 64, "processors")
		alg       = flag.String("alg", "random_delays_priority", "scheduler name")
		block     = flag.Int("block", 1, "block size")
		maxConc   = flag.Int("max-concurrent", 0, "in-process server admission slots (0 = 2*GOMAXPROCS)")
		verifyN   = flag.Int("verify-every", 8, "in-process server: audit every Nth run per problem")
		noVerify  = flag.Bool("no-verify", false, "in-process server: disable sampled audits")
		reqWait   = flag.Duration("request-timeout", 2*time.Minute, "per-request timeout")
		out       = flag.String("out", "", "write the JSON report to this path")
		benchNote = flag.String("note", "", "free-form note recorded in the report")
	)
	flag.Parse()

	for _, v := range []struct {
		name string
		n    int
	}{{"-clients", *clients}, {"-requests", *requests}, {"-k", *k}, {"-m", *m}} {
		if err := cliutil.ValidatePositive(v.name, v.n); err != nil {
			fatal(err)
		}
	}
	if err := cliutil.ValidateVerifyEvery(*verifyN); err != nil {
		fatal(err)
	}

	base := *addr
	var shutdown func()
	if base == "" {
		var err error
		base, shutdown, err = startInProcess(service.Config{
			MaxConcurrent: *maxConc,
			Verify:        !*noVerify,
			VerifyEvery:   *verifyN,
		})
		if err != nil {
			fatal(err)
		}
		defer shutdown()
	}

	client := &http.Client{
		Transport: &http.Transport{
			MaxIdleConns:        2 * *clients,
			MaxIdleConnsPerHost: 2 * *clients,
		},
	}
	defer client.CloseIdleConnections()

	spec := func(meshSeed, schedSeed uint64) map[string]any {
		return map[string]any{
			"mesh":       map[string]any{"family": *meshName, "scale": *scale, "seed": meshSeed},
			"directions": *k,
			"procs":      *m,
			"scheduler":  *alg,
			"block_size": *block,
			"seed":       schedSeed,
		}
	}

	report := Report{
		Recorded: time.Now().UTC().Format(time.RFC3339),
		Note:     *benchNote,
	}
	report.Config.Clients = *clients
	report.Config.RequestsPerClient = *requests
	report.Config.Mesh = *meshName
	report.Config.Scale = *scale
	report.Config.K = *k
	report.Config.M = *m
	report.Config.Scheduler = *alg
	report.Config.VerifyEvery = *verifyN
	// Audits are under our control only for the in-process server; an
	// external daemon's -verify flags are its own.
	report.Config.VerifyEnabled = *addr == "" && !*noVerify

	// Cold: every request is a distinct mesh, so nothing can hit.
	cold := runPhase("cold", base, client, *reqWait, *clients, *requests, func(c, i int) map[string]any {
		u := uint64(c*1_000_000 + i + 1)
		return spec(u, u)
	})
	report.Phases = append(report.Phases, cold)

	// Warm: one priming request, then every client repeats it.
	prime := spec(0xbeef, 7)
	if _, _, _, err := post(base, client, *reqWait, prime); err != nil {
		fatal(fmt.Errorf("warm priming request: %w", err))
	}
	warm := runPhase("warm", base, client, *reqWait, *clients, *requests, func(c, i int) map[string]any {
		return prime
	})
	report.Phases = append(report.Phases, warm)

	if cold.Latency.Median > 0 && warm.Latency.Median > 0 {
		report.WarmOverColdMedianSpeedup = float64(cold.Latency.Median) / float64(warm.Latency.Median)
	}

	// Server-side accounting: audits and per-tier hit rates.
	if stats, err := getStats(base, client, *reqWait); err == nil {
		report.Server = stats
	} else {
		fmt.Fprintln(os.Stderr, "sweeploadtest: stats fetch failed:", err)
	}

	printSummary(&report)

	fail := cold.Errors+warm.Errors > 0
	if report.Config.VerifyEnabled {
		if report.Server == nil || counterOf(report.Server, "service.verify.audited") == 0 {
			fmt.Fprintln(os.Stderr, "sweeploadtest: sampled audits were enabled but no run was audited")
			fail = true
		}
	}
	if *out != "" {
		buf, err := json.MarshalIndent(&report, "", "  ")
		if err != nil {
			fatal(err)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			fatal(err)
		}
		fmt.Println("report written to", *out)
	}
	if fail {
		os.Exit(1)
	}
}

// Report is the JSON artifact (BENCH_PR6.json).
type Report struct {
	Recorded string `json:"recorded"`
	Note     string `json:"note,omitempty"`
	Config   struct {
		Clients           int     `json:"clients"`
		RequestsPerClient int     `json:"requests_per_client"`
		Mesh              string  `json:"mesh"`
		Scale             float64 `json:"scale"`
		K                 int     `json:"k"`
		M                 int     `json:"m"`
		Scheduler         string  `json:"scheduler"`
		VerifyEnabled     bool    `json:"verify_enabled"`
		VerifyEvery       int     `json:"verify_every"`
	} `json:"config"`
	Phases                    []Phase         `json:"phases"`
	WarmOverColdMedianSpeedup float64         `json:"warm_over_cold_median_speedup"`
	Server                    json.RawMessage `json:"server,omitempty"`
}

// Phase summarizes one load phase.
type Phase struct {
	Name          string  `json:"name"`
	Requests      int     `json:"requests"`
	Errors        int     `json:"errors"`
	WallNanos     int64   `json:"wall_nanos"`
	ThroughputRPS float64 `json:"throughput_rps"`
	Latency       Quant   `json:"latency_nanos"`
	CacheHits     int     `json:"cache_hits"`
	Coalesced     int     `json:"coalesced"`
	// Retries429 counts retried admission rejections: requests that got a
	// 429, waited out the server's Retry-After (or the client backoff),
	// and were resent.
	Retries429 int `json:"retries_429"`
	// Windows is the trajectory: completions in order, split into up
	// to ten equal windows, each with its median latency and hit rate.
	Windows []Window `json:"windows"`
}

// Quant is a latency distribution in nanoseconds.
type Quant struct {
	Min    int64 `json:"min"`
	Median int64 `json:"median"`
	P90    int64 `json:"p90"`
	P99    int64 `json:"p99"`
	Max    int64 `json:"max"`
}

// Window is one slice of a phase's completion-ordered trajectory.
type Window struct {
	Requests    int     `json:"requests"`
	MedianNanos int64   `json:"median_nanos"`
	HitRate     float64 `json:"hit_rate"`
}

type sample struct {
	done    time.Duration // completion offset from phase start
	latency time.Duration
	hit     bool
	coal    bool
	retries int
	err     error
}

// runPhase fires clients×requests POSTs, specFor(client, index) each.
func runPhase(name, base string, client *http.Client, reqWait time.Duration, clients, requests int, specFor func(c, i int) map[string]any) Phase {
	fmt.Printf("phase %s: %d clients x %d requests...\n", name, clients, requests)
	samples := make([]sample, clients*requests)
	start := time.Now()
	done := make(chan struct{})
	for c := 0; c < clients; c++ {
		go func(c int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < requests; i++ {
				t0 := time.Now()
				hit, coal, retries, err := post(base, client, reqWait, specFor(c, i))
				samples[c*requests+i] = sample{
					done:    time.Since(start),
					latency: time.Since(t0),
					hit:     hit,
					coal:    coal,
					retries: retries,
					err:     err,
				}
			}
		}(c)
	}
	for c := 0; c < clients; c++ {
		<-done
	}
	wall := time.Since(start)

	ph := Phase{Name: name, Requests: len(samples), WallNanos: int64(wall)}
	lats := make([]int64, 0, len(samples))
	for _, s := range samples {
		if s.err != nil {
			ph.Errors++
			fmt.Fprintln(os.Stderr, "sweeploadtest:", name, "request failed:", s.err)
			continue
		}
		lats = append(lats, int64(s.latency))
		if s.hit {
			ph.CacheHits++
		}
		if s.coal {
			ph.Coalesced++
		}
		ph.Retries429 += s.retries
	}
	ph.ThroughputRPS = float64(len(lats)) / wall.Seconds()
	ph.Latency = quantiles(lats)

	// Trajectory: order by completion, split into up to 10 windows.
	ok := make([]sample, 0, len(samples))
	for _, s := range samples {
		if s.err == nil {
			ok = append(ok, s)
		}
	}
	sort.Slice(ok, func(i, j int) bool { return ok[i].done < ok[j].done })
	nw := 10
	if len(ok) < nw {
		nw = len(ok)
	}
	for w := 0; w < nw; w++ {
		lo, hi := w*len(ok)/nw, (w+1)*len(ok)/nw
		if lo == hi {
			continue
		}
		wl := make([]int64, 0, hi-lo)
		hits := 0
		for _, s := range ok[lo:hi] {
			wl = append(wl, int64(s.latency))
			if s.hit {
				hits++
			}
		}
		ph.Windows = append(ph.Windows, Window{
			Requests:    hi - lo,
			MedianNanos: quantiles(wl).Median,
			HitRate:     float64(hits) / float64(hi-lo),
		})
	}
	return ph
}

func quantiles(lats []int64) Quant {
	if len(lats) == 0 {
		return Quant{}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	at := func(q float64) int64 {
		i := int(q * float64(len(lats)-1))
		return lats[i]
	}
	return Quant{Min: lats[0], Median: at(0.5), P90: at(0.9), P99: at(0.99), Max: lats[len(lats)-1]}
}

// Retry policy for 429s: the server's Retry-After estimate is honored
// when present, raced against a capped exponential backoff with jitter
// so a fleet of rejected clients never returns in lockstep.
const (
	post429Retries = 5
	post429Base    = 100 * time.Millisecond
	post429Cap     = 5 * time.Second
)

// post sends one /v1/schedule request and reports the cache outcome,
// retrying admission rejections (429) per the policy above.
func post(base string, client *http.Client, reqWait time.Duration, spec map[string]any) (hit, coalesced bool, retries int, err error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return false, false, 0, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), reqWait)
	defer cancel()
	backoff := post429Base
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/schedule", bytes.NewReader(body))
		if err != nil {
			return false, false, retries, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			return false, false, retries, err
		}
		if resp.StatusCode == http.StatusTooManyRequests && retries < post429Retries {
			wait := backoff/2 + time.Duration(rand.Int63n(int64(backoff)/2+1))
			if secs, aerr := strconv.Atoi(resp.Header.Get("Retry-After")); aerr == nil {
				if ra := time.Duration(secs) * time.Second; ra > wait {
					wait = ra
				}
			}
			if wait > post429Cap {
				wait = post429Cap
			}
			resp.Body.Close()
			retries++
			backoff *= 2
			select {
			case <-time.After(wait):
				continue
			case <-ctx.Done():
				return false, false, retries, ctx.Err()
			}
		}
		var out struct {
			Makespan int `json:"makespan"`
			Cache    struct {
				Schedule  string `json:"schedule"`
				Coalesced bool   `json:"coalesced"`
			} `json:"cache"`
			Error string `json:"error"`
		}
		derr := json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if derr != nil {
			return false, false, retries, fmt.Errorf("status %d: %v", resp.StatusCode, derr)
		}
		if resp.StatusCode != http.StatusOK {
			return false, false, retries, fmt.Errorf("status %d: %s", resp.StatusCode, out.Error)
		}
		return out.Cache.Schedule == "hit", out.Cache.Coalesced, retries, nil
	}
}

// getStats fetches /v1/stats verbatim for the report.
func getStats(base string, client *http.Client, reqWait time.Duration) (json.RawMessage, error) {
	ctx, cancel := context.WithTimeout(context.Background(), reqWait)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/stats", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var raw json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		return nil, err
	}
	return raw, nil
}

// counterOf digs a named counter out of the stats JSON.
func counterOf(raw json.RawMessage, name string) int64 {
	var stats struct {
		Metrics struct {
			Counters []struct {
				Name  string `json:"name"`
				Value int64  `json:"value"`
			} `json:"counters"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(raw, &stats); err != nil {
		return 0
	}
	for _, c := range stats.Metrics.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

func printSummary(r *Report) {
	for _, ph := range r.Phases {
		fmt.Printf("%-5s %4d req  %2d err  %7.1f req/s  median %8s  p99 %8s  hits %d/%d  coalesced %d  429-retries %d\n",
			ph.Name, ph.Requests, ph.Errors, ph.ThroughputRPS,
			time.Duration(ph.Latency.Median).Round(time.Microsecond),
			time.Duration(ph.Latency.P99).Round(time.Microsecond),
			ph.CacheHits, ph.Requests, ph.Coalesced, ph.Retries429)
	}
	if r.WarmOverColdMedianSpeedup > 0 {
		fmt.Printf("warm-over-cold median speedup: %.1fx\n", r.WarmOverColdMedianSpeedup)
	}
}

// startInProcess boots a Server on a loopback listener and returns its
// base URL plus a drain-and-stop function.
func startInProcess(cfg service.Config) (string, func(), error) {
	srv := service.New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go func() { _ = httpSrv.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	stop := func() {
		srv.BeginDrain()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(ctx)
	}
	return base, stop, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweeploadtest:", err)
	os.Exit(2)
}
