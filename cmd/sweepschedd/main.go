// Command sweepschedd is the sweep-scheduling daemon: a long-running
// HTTP service that accepts mesh/quadrature/processor specs and
// returns schedules, metrics and transport solves, amortizing repeated
// meshes across requests through a three-tier content-addressed cache
// (Skeleton, DAG family, finished Schedule).
//
// Usage:
//
//	sweepschedd -addr :8080
//	sweepschedd -addr :8080 -max-concurrent 16 -cache-bytes 268435456 \
//	            -verify -verify-every 16
//
// Endpoints:
//
//	POST /v1/schedule   {"mesh":{"family":"tetonly","scale":0.05,"seed":1},
//	                     "directions":24,"procs":64,"seed":7}
//	POST /v1/transport  {"schedule":{...},"sigma_t":1.0,"sigma_s":0.5,"source":1.0}
//	GET  /v1/stats      cache, admission and metric accounting
//	GET  /healthz       liveness (503 once draining)
//
// On SIGTERM/SIGINT the daemon drains gracefully: /healthz flips to
// 503, new work is refused, in-flight requests finish (up to
// -drain-timeout), then the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sweepsched/internal/cliutil"
	"sweepsched/internal/service"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		maxConc    = flag.Int("max-concurrent", 0, "admission slots for concurrent builds/solves (0 = 2*GOMAXPROCS)")
		queueWait  = flag.Duration("queue-timeout", 2*time.Second, "max wait for an admission slot before 429 (negative = no queue)")
		cacheBytes = flag.Int64("cache-bytes", 256<<20, "total LRU byte budget across the cache tiers (negative = caching off)")
		workers    = flag.Int("workers", 0, "per-direction pipeline goroutines per request (0 = GOMAXPROCS)")
		doVerify   = flag.Bool("verify", false, "audit produced schedules with internal/verify")
		verifyN    = flag.Int("verify-every", 1, "with -verify, audit only every Nth run per cached problem (1 = every run)")
		drainWait  = flag.Duration("drain-timeout", 30*time.Second, "max time to wait for in-flight requests on shutdown")
	)
	flag.Parse()

	if err := cliutil.ValidateVerifyEvery(*verifyN); err != nil {
		fatal(err)
	}
	if err := cliutil.ValidateNonNegative("-workers", *workers); err != nil {
		fatal(err)
	}
	if *maxConc < 0 {
		fatal(fmt.Errorf("-max-concurrent must be >= 0, got %d", *maxConc))
	}

	srv := service.New(service.Config{
		MaxConcurrent: *maxConc,
		QueueTimeout:  *queueWait,
		CacheBytes:    *cacheBytes,
		Workers:       *workers,
		Verify:        *doVerify,
		VerifyEvery:   *verifyN,
	})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Graceful drain: on the first signal stop routing (healthz 503,
	// new work 503) and let in-flight requests finish; a second signal
	// or the drain timeout forces exit.
	done := make(chan error, 1)
	go func() { done <- httpSrv.ListenAndServe() }()
	log.Printf("sweepschedd listening on %s (slots=%d cache=%dB verify=%v every=%d)",
		*addr, *maxConc, *cacheBytes, *doVerify, *verifyN)

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-done:
		fatal(err) // listener died without a signal
	case sig := <-sigc:
		log.Printf("sweepschedd: %v: draining (timeout %v)", sig, *drainWait)
		srv.BeginDrain()
		ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("sweepschedd: drain incomplete: %v", err)
			os.Exit(1)
		}
		log.Printf("sweepschedd: drained, exiting")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweepschedd:", err)
	os.Exit(2)
}
