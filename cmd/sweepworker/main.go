// Command sweepworker is a standalone sweep worker process for the
// multi-process executor (internal/procrun). It is normally spawned by
// an orchestrator with ProcRunOptions.WorkerBinary pointing here and the
// SWEEPSCHED_PROCRUN_WORKER environment variable carrying its
// rendezvous address and rank; running it by hand prints usage.
//
// Most binaries never need this: the orchestrator defaults to re-exec'ing
// its own executable (any binary that calls sweepsched.MaybeProcWorker
// early in main can host workers). A dedicated worker binary is useful
// when the driving process is something you do not want forked per rank —
// a test harness, a daemon, a notebook kernel.
package main

import (
	"fmt"
	"os"

	"sweepsched/internal/procrun"
)

func main() {
	procrun.MaybeWorker() // never returns when spawned as a worker
	fmt.Fprintf(os.Stderr, "sweepworker: %s is not set.\n", procrun.EnvWorker)
	fmt.Fprintln(os.Stderr, "This binary is spawned by the multi-process sweep orchestrator")
	fmt.Fprintln(os.Stderr, "(sweepsched.SolveTransportProcs / sweepsim -procs), not run directly.")
	os.Exit(2)
}
