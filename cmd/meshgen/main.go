// Command meshgen generates and inspects the synthetic mesh families used
// throughout the experiments.
//
// Usage:
//
//	meshgen                       # summarize all four families at -scale
//	meshgen -family long          # one family
//	meshgen -family long -levels  # also print per-direction DAG levels
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"sweepsched/internal/dag"
	"sweepsched/internal/mesh"
	"sweepsched/internal/quadrature"
)

func main() {
	var (
		family = flag.String("family", "", "mesh family (default: all)")
		scale  = flag.Float64("scale", 0.05, "scale relative to paper cell counts")
		seed   = flag.Uint64("seed", 1, "jitter seed")
		levels = flag.Bool("levels", false, "print per-direction DAG level counts (k=24)")
		export = flag.String("export", "", "write the mesh in sweepmesh format to this path (single -family only)")
	)
	flag.Parse()

	if *export != "" && *family == "" {
		fmt.Fprintln(os.Stderr, "meshgen: -export requires -family")
		os.Exit(1)
	}

	names := mesh.FamilyNames()
	if *family != "" {
		names = []string{*family}
	}
	for _, name := range names {
		m, err := mesh.Family(name, *scale, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "meshgen:", err)
			os.Exit(1)
		}
		if *export != "" {
			f, err := os.Create(*export)
			if err != nil {
				fmt.Fprintln(os.Stderr, "meshgen:", err)
				os.Exit(1)
			}
			if err := mesh.Encode(f, m); err != nil {
				fmt.Fprintln(os.Stderr, "meshgen:", err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "meshgen:", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s (%d cells) to %s\n", name, m.NCells(), *export)
		}
		stats := m.ComputeStats()
		fmt.Println(stats)
		if q, err := m.ComputeQuality(); err == nil {
			fmt.Printf("  quality: aspect %.3f..%.3f (mean %.3f), volume grading %.1fx\n",
				q.AspectMin, q.AspectMax, q.AspectMean, q.VolumeRatio)
		}
		degs := make([]int, 0, len(stats.DegreeCounts))
		for d := range stats.DegreeCounts {
			degs = append(degs, d)
		}
		sort.Ints(degs)
		for _, d := range degs {
			fmt.Printf("  degree %d: %d cells\n", d, stats.DegreeCounts[d])
		}
		if *levels {
			dirs, err := quadrature.Octant(24)
			if err != nil {
				fmt.Fprintln(os.Stderr, "meshgen:", err)
				os.Exit(1)
			}
			dags := dag.BuildAll(m, dirs)
			fmt.Printf("  DAG levels per direction (D = critical path):")
			maxL := 0
			for i, d := range dags {
				if i%8 == 0 {
					fmt.Printf("\n   ")
				}
				fmt.Printf(" %4d", d.NumLevels)
				if d.NumLevels > maxL {
					maxL = d.NumLevels
				}
			}
			broken := 0
			for _, d := range dags {
				broken += d.RemovedEdges
			}
			fmt.Printf("\n  D = %d, cycle-broken edges = %d\n", maxL, broken)
		}
		fmt.Println()
	}
}
