// Package sweepsched is a Go implementation of provable parallel sweep
// scheduling on unstructured meshes, after V.S. Anil Kumar, M.V. Marathe,
// S. Parthasarathy, A. Srinivasan and S. Zust, "Provable Algorithms for
// Parallel Sweep Scheduling on Unstructured Meshes" (IPDPS 2005).
//
// A sweep processes every cell of a mesh once per direction, respecting the
// upwind precedence each direction induces, with every copy of a cell
// pinned to one processor. This package exposes the full pipeline:
//
//	p, _ := sweepsched.NewProblemFromFamily("tetonly", 0.1, 24, 64, 1)
//	res, _ := p.Schedule(sweepsched.RandomDelaysPriority, sweepsched.ScheduleOptions{
//		BlockSize: 64,
//		Seed:      7,
//	})
//	fmt.Println(res.Metrics.Makespan, res.Ratio, res.Metrics.C1)
//
// The schedulers include the paper's provable randomized algorithms
// (Random Delay, Random Delays with Priorities, Improved Random Delay) and
// the comparison heuristics (level, descendant, and Pautz's DFDS
// priorities, each optionally combined with random delays). Substrates —
// synthetic unstructured tetrahedral meshes, S_N-style direction sets, DAG
// induction with cycle breaking, a multilevel graph partitioner, and a
// goroutine-based message-passing executor — live in internal packages and
// are reached through this API.
package sweepsched

import (
	"context"
	"fmt"
	"io"
	"math"
	"sort"
	"sync/atomic"

	"sweepsched/internal/core"
	"sweepsched/internal/dag"
	"sweepsched/internal/geom"
	"sweepsched/internal/heuristics"
	"sweepsched/internal/lb"
	"sweepsched/internal/mesh"
	"sweepsched/internal/obs"
	"sweepsched/internal/opt"
	"sweepsched/internal/partition"
	"sweepsched/internal/procrun"
	"sweepsched/internal/quadrature"
	"sweepsched/internal/rng"
	"sweepsched/internal/sched"
	"sweepsched/internal/simulate"
	"sweepsched/internal/synth"
	"sweepsched/internal/trace"
	"sweepsched/internal/transport"
	"sweepsched/internal/verify"
)

// StatsCollector aggregates counters, gauges and timers from scheduling
// runs and solves; attach one via ScheduleOptions.Collector (or the
// corresponding experiment/transport config fields) and render it with
// Snapshot().WriteText or WriteJSON. See internal/obs.
type StatsCollector = obs.Collector

// NewStatsCollector returns an empty collector, safe for concurrent use.
func NewStatsCollector() *StatsCollector { return obs.New() }

// coreDelays draws the Algorithm 1/2 per-direction delays.
func coreDelays(k int, r *rng.Source) []int32 { return core.Delays(k, r) }

// Scheduler names a scheduling algorithm. The zero value is invalid; use
// the exported constants.
type Scheduler = heuristics.Name

// The available schedulers. The first three are the paper's provable
// algorithms (§4); the rest are the §5.2 comparison heuristics.
const (
	RandomDelays         = heuristics.RandomDelays         // Algorithm 1
	RandomDelaysPriority = heuristics.RandomDelaysPriority // Algorithm 2
	ImprovedDelays       = heuristics.ImprovedDelays       // Algorithm 3 (priority form)
	Level                = heuristics.Level
	LevelDelays          = heuristics.LevelDelays
	Descendant           = heuristics.Descendant
	DescendantDelays     = heuristics.DescendantDelays
	DFDS                 = heuristics.DFDS
	DFDSDelays           = heuristics.DFDSDelays
)

// Schedulers lists every available scheduler in presentation order.
func Schedulers() []Scheduler { return heuristics.AllNames() }

// Vec3 is re-exported for custom direction sets.
type Vec3 = geom.Vec3

// Mesh is the cell-adjacency mesh consumed by the schedulers.
type Mesh = mesh.Mesh

// Problem is an immutable sweep-scheduling instance: a mesh, a direction
// set with its induced DAGs, and a processor count.
type Problem struct {
	inst *sched.Instance

	// recipe is the deterministic construction spec for family-built
	// problems (nil otherwise); the multi-process executor requires it.
	recipe *procrun.ProblemSpec

	// verifySeq numbers the audited-schedule runs on this problem for
	// ScheduleOptions.VerifyEvery sampling. It is the only mutable state
	// a Problem carries; it never influences scheduling output, only
	// which runs pay for the audit.
	verifySeq atomic.Uint64
}

// MeshFamilies lists the built-in synthetic analogues of the paper's
// meshes: tetonly, well_logging, long, prismtet.
func MeshFamilies() []string { return mesh.FamilyNames() }

// NewProblemFromFamily generates a synthetic mesh of the named family at
// scale × its paper cell count, an S_N-style direction set with k
// directions, and wraps them for m processors.
func NewProblemFromFamily(family string, scale float64, k, m int, seed uint64) (*Problem, error) {
	msh, err := mesh.Family(family, scale, seed)
	if err != nil {
		return nil, err
	}
	p, err := NewProblemFromMesh(msh, k, m)
	if err != nil {
		return nil, err
	}
	// Family-built problems remember their construction recipe, so the
	// multi-process executor can ship it to worker processes instead of
	// the mesh itself (SolveTransportProcs).
	p.recipe = &procrun.ProblemSpec{Family: family, Scale: scale, MeshSeed: seed, K: k, M: m}
	return p, nil
}

// NewProblemFromMesh builds a problem over a caller-provided mesh with a k
// direction S_N-style set.
func NewProblemFromMesh(msh *Mesh, k, m int) (*Problem, error) {
	dirs, err := quadrature.Octant(k)
	if err != nil {
		return nil, err
	}
	return NewProblemFromDirections(msh, dirs, m)
}

// NewProblemFromDirections builds a problem with explicit directions.
func NewProblemFromDirections(msh *Mesh, dirs []Vec3, m int) (*Problem, error) {
	inst, err := sched.NewInstance(msh, dirs, m)
	if err != nil {
		return nil, err
	}
	return &Problem{inst: inst}, nil
}

// NewProblemFromPrebuiltDAGs wraps a mesh, its direction set and the
// already-induced per-direction DAGs in a Problem without rebuilding
// them. This is the cache hook of internal/service: the daemon's
// DAG-family tier keeps immutable DAG sets (induced over a cached
// dag.Skeleton) and turns them into ready-to-schedule Problems here.
// dags[i] must be the DAG induced on msh by dirs[i]; all DAGs must
// cover the same cell set. msh may be nil for non-geometric families
// (block partitioning is then rejected at Schedule time, as usual).
func NewProblemFromPrebuiltDAGs(msh *Mesh, dirs []Vec3, dags []*dag.DAG, procs int) (*Problem, error) {
	if len(dirs) != len(dags) {
		return nil, fmt.Errorf("sweepsched: %d directions but %d DAGs", len(dirs), len(dags))
	}
	inst, err := sched.FromDAGs(dags, procs)
	if err != nil {
		return nil, err
	}
	if msh != nil && msh.NCells() != inst.N() {
		return nil, fmt.Errorf("sweepsched: mesh has %d cells but DAGs cover %d", msh.NCells(), inst.N())
	}
	inst.Mesh = msh
	inst.Dirs = dirs
	return &Problem{inst: inst}, nil
}

// NonGeometricKind names a synthetic DAG-family generator for instances
// with no underlying mesh (§2: the algorithms "are applicable even to
// non-geometric instances").
type NonGeometricKind string

// The available non-geometric instance families.
const (
	// RandomChains: every direction is a Hamiltonian chain over the cells
	// in an independent random order.
	RandomChains NonGeometricKind = "random_chains"
	// LayeredRandom: independent random layered DAGs of bounded width.
	LayeredRandom NonGeometricKind = "layered_random"
	// HeuristicTrap: chained cell groups that deterministic priority
	// schedulers collide on unless directions are staggered.
	HeuristicTrap NonGeometricKind = "heuristic_trap"
)

// NewProblemNonGeometric builds a mesh-free instance of the named kind with
// n cells, k directions and m processors. Block-based ScheduleOptions are
// rejected at Schedule time for such problems (there is no mesh to
// partition); use BlockSize ≤ 1.
func NewProblemNonGeometric(kind NonGeometricKind, n, k, m int, seed uint64) (*Problem, error) {
	var (
		dags []*dag.DAG
		err  error
	)
	switch kind {
	case RandomChains:
		dags, err = synth.RandomChains(n, k, seed)
	case LayeredRandom:
		dags, err = synth.LayeredRandom(n, k, 8, seed)
	case HeuristicTrap:
		g := n / 10
		if g < 1 {
			g = 1
		}
		dags, err = synth.HeuristicTrap(g, 10, k, seed)
	default:
		return nil, fmt.Errorf("sweepsched: unknown non-geometric kind %q", kind)
	}
	if err != nil {
		return nil, err
	}
	inst, err := sched.FromDAGs(dags, m)
	if err != nil {
		return nil, err
	}
	return &Problem{inst: inst}, nil
}

// N returns the number of cells.
func (p *Problem) N() int { return p.inst.N() }

// K returns the number of directions.
func (p *Problem) K() int { return p.inst.K() }

// M returns the number of processors.
func (p *Problem) M() int { return p.inst.M }

// Tasks returns n·k, the total number of unit tasks.
func (p *Problem) Tasks() int { return p.inst.NTasks() }

// Bounds returns the lower bounds on the optimal makespan.
func (p *Problem) Bounds() Bounds { return lb.Compute(p.inst) }

// Bounds aggregates the §4 lower-bound terms (nk/m, k, D).
type Bounds = lb.Bounds

// ScheduleOptions tunes one scheduling run.
type ScheduleOptions struct {
	// BlockSize ≤ 1 assigns each cell to a random processor independently;
	// larger values first partition the mesh into blocks of about this many
	// cells (multilevel partitioner, §5.1) and randomly assign blocks.
	BlockSize int
	// Seed drives all random choices (delays and assignment); runs with the
	// same seed are identical.
	Seed uint64
	// Workers bounds the goroutines used for the embarrassingly parallel
	// per-direction stages of a run — priority computation and C1/C2 metric
	// accumulation (0 = GOMAXPROCS, 1 = serial). The result is bit-for-bit
	// identical for every value: parallel stages write into slots indexed
	// by direction and all randomness is drawn from per-direction
	// substreams before any fan-out (see DESIGN.md, "Parallel execution &
	// determinism").
	Workers int
	// Verify runs the internal/verify auditor over the produced schedule —
	// an independent recomputation of every feasibility constraint and of
	// the reported metrics — and fails the run if any invariant is
	// violated. Off by default (it costs O(tasks+edges) extra per run);
	// the SWEEPSCHED_VERIFY environment variable forces it on everywhere.
	Verify bool
	// VerifyEvery samples the audit when verification is on: only every
	// Nth scheduling run on this Problem is audited (the first run always
	// is), so sustained run loops can keep the audit enabled at a
	// fraction of its cost. 0 or 1 audits every run (the historical
	// behavior). Skipped audits are counted in the Collector as
	// "api.verify_skipped". Sampling never changes scheduling output.
	VerifyEvery int
	// Collector, when non-nil, receives counters and stage timings from
	// the run (assignment, scheduling, metrics, verification and the
	// kernel-level sched.* series). A nil collector costs nothing on the
	// hot path.
	Collector *obs.Collector
	// Anglesets > 0 aggregates the per-direction pipeline: directions are
	// partitioned into about this many sign-homogeneous anglesets (octant
	// grouping, split largest-first toward the requested count, capped at
	// one direction per set), priorities and release delays are computed
	// once per angleset on its representative DAG, and the aggregated
	// kernel expands them back to per-direction task placements —
	// precedence is always enforced with every direction's own DAG.
	// Requires a problem built with an explicit direction set (geometric
	// problems); the layer-synchronous RandomDelays and ImprovedDelays
	// schedulers do not support aggregation. 0 disables aggregation (the
	// per-direction pipeline); negative values are rejected.
	Anglesets int
}

// anglesets resolves the option's requested aggregation into a direction
// partition, or nil when aggregation is off.
func (p *Problem) anglesets(opts ScheduleOptions) ([][]int32, error) {
	if opts.Anglesets == 0 {
		return nil, nil
	}
	if opts.Anglesets < 0 {
		return nil, fmt.Errorf("sweepsched: Anglesets must be >= 1, got %d", opts.Anglesets)
	}
	if len(p.inst.Dirs) != p.inst.K() {
		return nil, fmt.Errorf("sweepsched: angleset aggregation requires a problem with a direction set; this problem is non-geometric")
	}
	return quadrature.AnglesetsFor(p.inst.Dirs, opts.Anglesets)
}

// verifyOn reports whether this run has verification enabled at all.
func (o ScheduleOptions) verifyOn() bool { return o.Verify || verify.ForcedByEnv() }

// shouldVerify reports whether this particular run is audited,
// advancing the problem's VerifyEvery sampling sequence. With
// VerifyEvery ≤ 1 every verified run is audited and the sequence is
// untouched.
func (p *Problem) shouldVerify(o ScheduleOptions) bool {
	if !o.verifyOn() {
		return false
	}
	if o.VerifyEvery <= 1 {
		return true
	}
	return (p.verifySeq.Add(1)-1)%uint64(o.VerifyEvery) == 0
}

// Result is a completed scheduling run.
type Result struct {
	Schedule *sched.Schedule
	Metrics  sched.Metrics
	// Ratio is makespan / (nk/m), the paper's empirical guarantee measure.
	Ratio float64
}

// Schedule runs the named scheduler and measures the outcome. The returned
// schedule is validated; an invalid schedule is reported as an error (it
// would indicate a bug, not bad luck). ScheduleCtx adds cooperative
// cancellation between the pipeline stages.
func (p *Problem) Schedule(alg Scheduler, opts ScheduleOptions) (*Result, error) {
	return p.ScheduleCtx(context.Background(), alg, opts)
}

// ScheduleComm runs the named scheduler under the uniform
// communication-delay model of §3: an edge whose endpoints sit on
// different processors delays the successor by commDelay extra steps.
// Only the list-scheduling algorithms support this model; the layered
// Algorithm 1 does not (its analysis assumes c = 0), so RandomDelays is
// rejected here.
func (p *Problem) ScheduleComm(alg Scheduler, opts ScheduleOptions, commDelay int) (*Result, error) {
	if alg == RandomDelays {
		return nil, fmt.Errorf("sweepsched: %s is layer-synchronous and does not support comm delays; use %s",
			RandomDelays, RandomDelaysPriority)
	}
	groups, err := p.anglesets(opts)
	if err != nil {
		return nil, err
	}
	r := rng.New(opts.Seed)
	var assign sched.Assignment
	if opts.BlockSize <= 1 {
		assign = sched.RandomAssignment(p.inst.N(), p.inst.M, r)
	} else {
		g, err := partitionGraph(p.inst)
		if err != nil {
			return nil, err
		}
		part, nBlocks, err := blocksOf(g, opts.BlockSize, opts.Seed)
		if err != nil {
			return nil, err
		}
		assign = sched.BlockAssignment(part, nBlocks, p.inst.M, r)
	}
	// The kernel's transient state comes from the shape-keyed pool; only
	// the returned schedule (which escapes into the Result) is allocated.
	ws := sched.GetWorkspace(p.inst)
	ws.SetObserver(opts.Collector)
	defer ws.Release()
	s := &sched.Schedule{}
	if groups != nil {
		aggPrio, err := aggPriorityFor(alg, p.inst, assign, groups, r, opts.Workers)
		if err != nil {
			return nil, err
		}
		if err := sched.CommScheduleAnglesetInto(ws, s, p.inst, assign, groups, aggPrio, commDelay); err != nil {
			return nil, err
		}
	} else {
		prio, err := priorityFor(alg, p.inst, assign, r, opts.Workers)
		if err != nil {
			return nil, err
		}
		if err := sched.CommScheduleInto(ws, s, p.inst, assign, prio, commDelay); err != nil {
			return nil, err
		}
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("sweepsched: invalid comm schedule: %w", err)
	}
	if err := sched.ValidateComm(s, commDelay); err != nil {
		return nil, fmt.Errorf("sweepsched: comm-delay constraint violated: %w", err)
	}
	met := sched.Measure(s, opts.Workers)
	if p.shouldVerify(opts) {
		if err := verify.Schedule(p.inst, s, verify.Opts{CommDelay: commDelay, Metrics: &met, Anglesets: groups}); err != nil {
			return nil, fmt.Errorf("sweepsched: comm schedule failed the audit: %w", err)
		}
		opts.Collector.Counter("api.verified").Inc()
	} else if opts.verifyOn() {
		opts.Collector.Counter("api.verify_skipped").Inc()
	}
	return &Result{
		Schedule: s,
		Metrics:  met,
		Ratio:    lb.Ratio(s.Makespan, p.inst),
	}, nil
}

// aggPriorityFor derives per-angleset aggregate priorities for the
// comm-delay path: each angleset's segment is filled from its
// representative DAG (the same amortization RunAnglesetInto performs for
// the main path). ImprovedDelays is refused — its priorities come from a
// global greedy schedule over all k directions, which has no
// representative-DAG form.
func aggPriorityFor(alg Scheduler, inst *sched.Instance, assign sched.Assignment, groups [][]int32, r *rng.Source, workers int) (sched.Priorities, error) {
	prio := make(sched.Priorities, inst.N()*len(groups))
	switch alg {
	case RandomDelaysPriority:
		delays := coreDelays(len(groups), r)
		n := int32(inst.N())
		for a, g := range groups {
			d := inst.DAGs[g[0]]
			base := int32(a) * n
			for v := int32(0); v < n; v++ {
				prio[base+v] = int64(d.Level[v] + delays[a])
			}
		}
	case Level, LevelDelays:
		heuristics.LevelAnglesetPrioritiesInto(prio, inst, groups, workers)
	case Descendant, DescendantDelays:
		heuristics.DescendantAnglesetPrioritiesInto(prio, inst, groups, workers)
	case DFDS, DFDSDelays:
		heuristics.DFDSAnglesetPrioritiesInto(prio, inst, assign, groups, workers)
	default:
		return nil, fmt.Errorf("sweepsched: %s does not support angleset aggregation under comm delays", alg)
	}
	return prio, nil
}

// priorityFor derives the task priorities a scheduler would use, for the
// comm-delay scheduling path.
func priorityFor(alg Scheduler, inst *sched.Instance, assign sched.Assignment, r *rng.Source, workers int) (sched.Priorities, error) {
	switch alg {
	case RandomDelaysPriority:
		// Γ(v,i) = level + X_i, as in Algorithm 2.
		delays := coreDelays(inst.K(), r)
		prio := make(sched.Priorities, inst.NTasks())
		n := int32(inst.N())
		for i, d := range inst.DAGs {
			base := int32(i) * n
			for v := int32(0); v < n; v++ {
				prio[base+v] = int64(d.Level[v] + delays[i])
			}
		}
		return prio, nil
	case Level, LevelDelays:
		return heuristics.LevelPriorities(inst, workers), nil
	case Descendant, DescendantDelays:
		return heuristics.DescendantPriorities(inst, workers), nil
	case DFDS, DFDSDelays:
		return heuristics.DFDSPriorities(inst, assign, workers), nil
	case ImprovedDelays:
		level, _, err := sched.GreedySchedule(inst, nil)
		if err != nil {
			return nil, err
		}
		delays := coreDelays(inst.K(), r)
		prio := make(sched.Priorities, inst.NTasks())
		n := int32(inst.N())
		for i := range inst.DAGs {
			base := int32(i) * n
			for v := int32(0); v < n; v++ {
				prio[base+v] = int64(level[base+v] + delays[i])
			}
		}
		return prio, nil
	}
	return nil, fmt.Errorf("sweepsched: unknown scheduler %s", alg)
}

// RenderGantt writes a text Gantt chart of the result's schedule.
func (r *Result) RenderGantt(w io.Writer, maxProcs, maxCols int) error {
	return trace.RenderGantt(w, r.Schedule, maxProcs, maxCols)
}

// Utilization returns mean processor utilization (tasks / (m·makespan)),
// the reciprocal of the ratio to the nk/m bound.
func (r *Result) Utilization() float64 {
	return trace.Compute(r.Schedule).MeanUtilization
}

// CellWeights re-exports per-cell processing costs for weighted runs.
type CellWeights = sched.CellWeights

// MachineModel re-exports the weighted engine's machine description:
// per-processor speeds and two-level hierarchical communication delays.
// A nil model is the paper's uniform machine.
type MachineModel = sched.MachineModel

// WeightedResult is a completed weighted scheduling run.
type WeightedResult struct {
	Schedule *sched.WeightedSchedule
	Makespan int64
	// Ratio is makespan over the speed-aware load bound Σ k·w / Σ speed —
	// the weighted analogue of the paper's plotted nk/m baseline.
	Ratio float64
	// Bounds carries every weighted lower-bound term (load, per-cell,
	// critical path); StrongRatio is makespan over Bounds.Max(), the
	// tightest empirical approximation factor.
	Bounds      lb.WeightedBounds
	StrongRatio float64
}

// ScheduleWeighted runs the named scheduler with per-cell processing costs
// on the uniform machine (the paper's model is the all-ones special case).
// RandomDelays (the layer-synchronous Algorithm 1) is not supported; use
// the priority form.
func (p *Problem) ScheduleWeighted(alg Scheduler, opts ScheduleOptions, weights CellWeights) (*WeightedResult, error) {
	return p.ScheduleWeightedMachine(alg, opts, weights, nil)
}

// ScheduleWeightedMachine is ScheduleWeighted under a machine model:
// per-processor integer speeds (duration = ceil(w/speed)) and two-level
// hierarchical communication delays. A nil model is the uniform machine.
func (p *Problem) ScheduleWeightedMachine(alg Scheduler, opts ScheduleOptions, weights CellWeights, model *MachineModel) (*WeightedResult, error) {
	if alg == RandomDelays {
		return nil, fmt.Errorf("sweepsched: %s is layer-synchronous and has no weighted form; use %s",
			RandomDelays, RandomDelaysPriority)
	}
	if opts.Anglesets != 0 {
		return nil, fmt.Errorf("sweepsched: the weighted scheduler has no angleset-aggregated form")
	}
	if err := weights.Validate(p.inst.N()); err != nil {
		return nil, err
	}
	if err := model.Validate(p.inst.M); err != nil {
		return nil, err
	}
	r := rng.New(opts.Seed)
	var assign sched.Assignment
	if opts.BlockSize <= 1 {
		assign = sched.RandomAssignment(p.inst.N(), p.inst.M, r)
	} else {
		g, err := partitionGraph(p.inst)
		if err != nil {
			return nil, err
		}
		// Weight-aware blocks: balance work, not cell counts.
		for v := 0; v < p.inst.N(); v++ {
			g.VWeight[v] = weights[v]
		}
		part, nBlocks, err := blocksOf(g, opts.BlockSize, opts.Seed)
		if err != nil {
			return nil, err
		}
		assign = sched.BlockAssignment(part, nBlocks, p.inst.M, r)
	}
	prio, err := priorityFor(alg, p.inst, assign, r, opts.Workers)
	if err != nil {
		return nil, err
	}
	s, err := sched.ListScheduleMachine(p.inst, assign, prio, weights, model)
	if err != nil {
		return nil, err
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("sweepsched: invalid weighted schedule: %w", err)
	}
	if p.shouldVerify(opts) {
		if err := verify.Weighted(p.inst, s); err != nil {
			return nil, fmt.Errorf("sweepsched: weighted schedule failed the audit: %w", err)
		}
		opts.Collector.Counter("api.verified").Inc()
	} else if opts.verifyOn() {
		opts.Collector.Counter("api.verify_skipped").Inc()
	}
	bounds := lb.ComputeWeighted(p.inst, weights, model)
	return &WeightedResult{
		Schedule:    s,
		Makespan:    s.Makespan,
		Ratio:       float64(s.Makespan) / bounds.Load,
		Bounds:      bounds,
		StrongRatio: lb.WeightedRatio(s.Makespan, bounds),
	}, nil
}

// LogNormalWeights draws reproducible heterogeneous cell costs: weight ≈
// round(median · exp(sigma·N(0,1))) + 1. Useful for exercising the
// weighted engine on realistic skewed cost distributions.
func LogNormalWeights(n int, median, sigma float64, seed uint64) CellWeights {
	r := rng.New(seed)
	w := make(CellWeights, n)
	for v := range w {
		x := median * math.Exp(sigma*r.NormFloat64())
		if x < 0 {
			x = 0
		}
		w[v] = int32(x) + 1
	}
	return w
}

// ExactOptimal computes the true optimal makespan by exhaustive search
// over assignments and schedules. It only works for tiny instances
// (n·k ≤ 20 tasks) and errors otherwise; use it to measure real
// approximation ratios where the paper could only compare against nk/m.
func (p *Problem) ExactOptimal() (int, error) {
	return opt.Exact(p.inst)
}

// TransportConfig sets the physics and iteration controls of the built-in
// discrete-ordinates transport solver.
type TransportConfig = transport.Config

// TransportResult is a converged (or iteration-capped) transport solve.
type TransportResult = transport.Result

// SolveTransport runs the S_N transport source iteration serially, sweeping
// the mesh in the result's schedule order. This is the application the
// schedules exist to drive (paper §1).
func (p *Problem) SolveTransport(res *Result, cfg TransportConfig) (*TransportResult, error) {
	return transport.Solve(res.Schedule, cfg)
}

// SolveTransportParallel runs the same solve with one goroutine per
// processor of the schedule, exchanging angular fluxes through the
// batched interconnect (deadline-driven per-destination envelopes; set
// TransportConfig.NoBatch for one transmission per message). Its result
// is bitwise-identical to SolveTransport either way, and its
// TransportResult.Comm reports the observed traffic.
func (p *Problem) SolveTransportParallel(res *Result, cfg TransportConfig) (*TransportResult, error) {
	return transport.SolveParallel(res.Schedule, cfg)
}

// MultigroupConfig couples several energy groups through downscatter; see
// the transport package documentation.
type MultigroupConfig = transport.MultigroupConfig

// GroupSpec is one energy group's physics in a multigroup solve.
type GroupSpec = transport.GroupSpec

// MultigroupResult collects per-group fluxes and iteration counts.
type MultigroupResult = transport.MultigroupResult

// SolveMultigroup solves a downscatter-coupled multigroup transport
// problem, reusing the result's sweep schedule for every energy group (as
// production S_N codes do — the schedule's cost is amortized G times).
func (p *Problem) SolveMultigroup(res *Result, cfg MultigroupConfig) (*MultigroupResult, error) {
	return transport.SolveMultigroup(res.Schedule, cfg)
}

// Simulate executes a result's schedule on the goroutine-based
// message-passing machine simulator and returns its independent accounting
// (steps, total messages = C1, communication rounds = C2).
func (p *Problem) Simulate(res *Result) (*SimulationResult, error) {
	return simulate.Run(res.Schedule)
}

// SimulationResult reports a distributed execution.
type SimulationResult = simulate.Result

// DirectionLevels returns the number of precedence levels in each
// direction's DAG; the maximum is the critical-path lower bound D.
func (p *Problem) DirectionLevels() []int {
	out := make([]int, p.inst.K())
	for i, d := range p.inst.DAGs {
		out[i] = d.NumLevels
	}
	return out
}

// BrokenCycleEdges reports how many dependence edges were discarded per
// direction to acyclify the induced digraphs (§3 assumes broken cycles).
func (p *Problem) BrokenCycleEdges() []int {
	out := make([]int, p.inst.K())
	for i, d := range p.inst.DAGs {
		out[i] = d.RemovedEdges
	}
	return out
}

// GenerateFamilyMesh exposes the synthetic mesh generator directly for
// callers that want to inspect the mesh (cmd/meshgen, examples).
func GenerateFamilyMesh(family string, scale float64, seed uint64) (*Mesh, error) {
	return mesh.Family(family, scale, seed)
}

// RegularGrid returns a structured nx×ny×nz hexahedral mesh, the substrate
// for KBA-style comparisons.
func RegularGrid(nx, ny, nz int) *Mesh { return mesh.RegularHex(nx, ny, nz) }

// EncodeTrace writes the result's schedule as a plain-text trace viewable
// with cmd/sweepview.
func EncodeTrace(w io.Writer, r *Result) error { return sched.EncodeTrace(w, r.Schedule) }

// EncodeMesh writes a tetrahedral mesh in the plain-text sweepmesh format.
func EncodeMesh(w io.Writer, m *Mesh) error { return mesh.Encode(w, m) }

// DecodeMesh reads a sweepmesh stream and rebuilds the mesh (faces,
// normals, adjacency).
func DecodeMesh(r io.Reader) (*Mesh, error) { return mesh.Decode(r) }

// Task identifies one unit of sweep work: cell Cell processed in direction
// Dir.
type Task struct {
	Cell, Dir int
	// Start is the schedule step at which the task runs (set by
	// ExecutionOrder).
	Start int
}

// ExecutionOrder returns every task sorted by scheduled start step (ties by
// direction, then cell). Processing tasks in this order is a valid
// execution of all sweeps: each task appears after all of its upwind
// predecessors, which is what a solver consuming the schedule needs.
func (r *Result) ExecutionOrder() []Task {
	inst := r.Schedule.Inst
	tasks := make([]Task, inst.NTasks())
	for t := range tasks {
		v, i := inst.Split(sched.TaskID(t))
		tasks[t] = Task{Cell: int(v), Dir: int(i), Start: int(r.Schedule.Start[t])}
	}
	sort.Slice(tasks, func(a, b int) bool {
		ta, tb := tasks[a], tasks[b]
		if ta.Start != tb.Start {
			return ta.Start < tb.Start
		}
		if ta.Dir != tb.Dir {
			return ta.Dir < tb.Dir
		}
		return ta.Cell < tb.Cell
	})
	return tasks
}

// Upwind returns the cells immediately upwind of cell in the given
// direction — the predecessors whose angular flux a transport solver needs
// before solving this cell. The returned slice aliases internal storage and
// must not be modified.
func (p *Problem) Upwind(cell, dir int) []int32 {
	return p.inst.DAGs[dir].In(int32(cell))
}

// Downwind returns the cells immediately downwind of cell in the given
// direction. The returned slice aliases internal storage and must not be
// modified.
func (p *Problem) Downwind(cell, dir int) []int32 {
	return p.inst.DAGs[dir].Out(int32(cell))
}

// Processor returns the processor a result assigned to the given cell.
func (r *Result) Processor(cell int) int { return int(r.Schedule.Assign[cell]) }

// partitionGraph builds the cell-adjacency graph of the problem's mesh for
// block partitioning. Mesh-free (non-geometric) problems cannot be block
// partitioned.
func partitionGraph(inst *sched.Instance) (*partition.Graph, error) {
	if inst.Mesh == nil {
		return nil, fmt.Errorf("sweepsched: block partitioning requires a mesh; this problem is non-geometric (use BlockSize <= 1)")
	}
	return partition.FromMesh(inst.Mesh), nil
}

// blocksOf wraps the multilevel partitioner's block decomposition.
func blocksOf(g *partition.Graph, blockSize int, seed uint64) ([]int32, int, error) {
	return partition.Blocks(g, blockSize, seed)
}
