package sweepsched

import (
	"strings"
	"testing"
)

// TestScheduleWithAnglesets: the aggregated pipeline produces audited
// valid schedules through the public API, deterministically in the
// seed, for every aggregation-capable scheduler, and the option is
// rejected where aggregation is undefined.
func TestScheduleWithAnglesets(t *testing.T) {
	p, err := NewProblemFromFamily("tetonly", 0.01, 16, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []Scheduler{RandomDelaysPriority, Level, LevelDelays, Descendant, DescendantDelays, DFDS, DFDSDelays} {
		res, err := p.Schedule(alg, ScheduleOptions{Seed: 3, Anglesets: 8, Verify: true})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		again, err := p.Schedule(alg, ScheduleOptions{Seed: 3, Anglesets: 8, Verify: true})
		if err != nil {
			t.Fatalf("%s rerun: %v", alg, err)
		}
		if res.Metrics.Makespan != again.Metrics.Makespan {
			t.Fatalf("%s: aggregated run not deterministic", alg)
		}
	}
	// Comm-delay model under aggregation, audited.
	if _, err := p.ScheduleComm(Level, ScheduleOptions{Seed: 5, Anglesets: 8, Verify: true}, 2); err != nil {
		t.Fatalf("aggregated comm: %v", err)
	}
	if _, err := p.ScheduleComm(ImprovedDelays, ScheduleOptions{Seed: 5, Anglesets: 8}, 2); err == nil {
		t.Fatal("ImprovedDelays accepted aggregation under comm delays")
	}
}

func TestScheduleAnglesetsRejections(t *testing.T) {
	p, err := NewProblemFromFamily("tetonly", 0.01, 8, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Schedule(Level, ScheduleOptions{Anglesets: -1}); err == nil || !strings.Contains(err.Error(), ">= 1") {
		t.Fatalf("negative Anglesets not rejected: %v", err)
	}
	for _, alg := range []Scheduler{RandomDelays, ImprovedDelays} {
		if _, err := p.Schedule(alg, ScheduleOptions{Anglesets: 8}); err == nil {
			t.Fatalf("%s accepted aggregation", alg)
		}
	}
	if _, err := p.ScheduleWeighted(Level, ScheduleOptions{Anglesets: 8}, LogNormalWeights(p.N(), 4, 0.5, 1)); err == nil {
		t.Fatal("weighted scheduler accepted aggregation")
	}
	ng, err := NewProblemNonGeometric(RandomChains, 40, 4, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ng.Schedule(Level, ScheduleOptions{Anglesets: 4}); err == nil || !strings.Contains(err.Error(), "non-geometric") {
		t.Fatalf("non-geometric problem accepted aggregation: %v", err)
	}
}
