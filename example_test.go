package sweepsched_test

import (
	"fmt"

	"sweepsched"
)

// ExampleProblem_Schedule builds a small problem and runs the paper's
// Algorithm 2. All randomness is seeded, so the output is stable.
func ExampleProblem_Schedule() {
	p, err := sweepsched.NewProblemFromFamily("tetonly", 0.01, 8, 4, 1)
	if err != nil {
		panic(err)
	}
	res, err := p.Schedule(sweepsched.RandomDelaysPriority, sweepsched.ScheduleOptions{Seed: 7})
	if err != nil {
		panic(err)
	}
	fmt.Printf("cells=%d directions=%d processors=%d\n", p.N(), p.K(), p.M())
	fmt.Printf("ratio below 3: %v\n", res.Ratio < 3)
	fmt.Printf("schedule covers all tasks: %v\n", len(res.Schedule.Start) == p.Tasks())
	// Output:
	// cells=315 directions=8 processors=4
	// ratio below 3: true
	// schedule covers all tasks: true
}

// ExampleProblem_Simulate replays a schedule on the message-passing
// simulator and cross-checks the analytic communication metrics.
func ExampleProblem_Simulate() {
	p, err := sweepsched.NewProblemFromFamily("long", 0.01, 4, 4, 2)
	if err != nil {
		panic(err)
	}
	res, err := p.Schedule(sweepsched.DFDS, sweepsched.ScheduleOptions{Seed: 3, BlockSize: 8})
	if err != nil {
		panic(err)
	}
	sim, err := p.Simulate(res)
	if err != nil {
		panic(err)
	}
	fmt.Println("steps match makespan:", sim.Steps == res.Metrics.Makespan)
	fmt.Println("messages match C1:", sim.TotalMessages == res.Metrics.C1)
	fmt.Println("rounds match C2:", sim.CommRounds == res.Metrics.C2)
	// Output:
	// steps match makespan: true
	// messages match C1: true
	// rounds match C2: true
}

// ExampleSchedulers lists the available algorithms.
func ExampleSchedulers() {
	for _, s := range sweepsched.Schedulers() {
		fmt.Println(s)
	}
	// Output:
	// random_delays
	// random_delays_priority
	// improved_delays
	// level
	// level_delays
	// descendant
	// descendant_delays
	// dfds
	// dfds_delays
}

// ExampleProblem_SolveTransport runs the bundled S_N transport solver on a
// schedule — the application sweeps exist for.
func ExampleProblem_SolveTransport() {
	p, err := sweepsched.NewProblemFromFamily("tetonly", 0.01, 8, 4, 5)
	if err != nil {
		panic(err)
	}
	res, err := p.Schedule(sweepsched.RandomDelaysPriority, sweepsched.ScheduleOptions{Seed: 1})
	if err != nil {
		panic(err)
	}
	sol, err := p.SolveTransport(res, sweepsched.TransportConfig{
		SigmaT: 1, SigmaS: 0.5, Source: 1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("converged:", sol.Converged)
	fmt.Println("all fluxes positive:", allPositive(sol.Phi))
	// Output:
	// converged: true
	// all fluxes positive: true
}

func allPositive(xs []float64) bool {
	for _, x := range xs {
		if x <= 0 {
			return false
		}
	}
	return true
}
