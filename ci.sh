#!/usr/bin/env bash
# ci.sh — the repository's tier-1 gate plus the race/fuzz hardening pass.
#
#   ./ci.sh         # vet + build + race-enabled tests + fuzz smoke
#   FUZZTIME=30s ./ci.sh   # longer fuzz smoke
#
# The race-enabled test run is what makes the determinism harness
# (TestTraceDeterminismAcrossWorkers) race-proof: it executes every
# scheduler's parallel pipeline at Workers=8 under the race detector.
set -euo pipefail
cd "$(dirname "$0")"

FUZZTIME="${FUZZTIME:-10s}"

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== verify: full suite with runtime schedule auditing forced on =="
# SWEEPSCHED_VERIFY=1 routes every schedule produced by any test through
# the internal/verify auditor; -count=1 defeats the test cache.
SWEEPSCHED_VERIFY=1 go test -count=1 ./...

echo "== resilience: executors under -race with a hard timeout =="
# The fault-injection / recovery / cancellation suite must never hang: a
# deadlocked coordinator or leaked worker turns into a test failure here.
go test -race -timeout 120s ./internal/faults ./internal/simulate ./internal/transport

echo "== procfault: kill -9 a real worker process, recover bitwise =="
# True multi-process execution: 4 worker OS processes over localhost
# TCP, one killed with SIGKILL mid-epoch (plus severed-socket and
# mixed-fault runs in the suite), recovery rolling back to durable
# on-disk checkpoints. The recovered flux must match the serial solver
# bit for bit and the /proc scan must find no orphaned workers.
go test -race -count=1 -timeout 300s ./internal/procrun

echo "== benchmark smoke (1 iteration each) =="
# Compile-and-run pass over every benchmark: catches bit-rot in the
# kernel benchmarks (and their zero-alloc assertions use the same paths)
# without turning CI into a measurement job.
go test -run '^$' -bench . -benchtime 1x ./...

echo "== dag builder bench smoke (allocation-counted; see make bench-dag) =="
go test -run '^$' -bench 'Benchmark(BuildInto|BuildAllFamily)/' -benchmem -benchtime 1x ./internal/dag

echo "== service: sweepschedd daemon suite under -race + loadtest smoke =="
# The HTTP service's integration tests (cache tiers, coalescing,
# admission 429s, cancellation, drain) run race-enabled, then a short
# in-process loadtest exercises the daemon end to end with 8 concurrent
# clients and server-side sampled audits on. The harness exits non-zero
# on any request error or if no audit ran.
go test -race -count=1 -timeout 120s ./internal/service ./internal/cliutil
go run ./cmd/sweeploadtest -clients 8 -requests 4 -scale 0.02 -k 8 -m 16 -verify-every 4 -out /dev/null

echo "== angleset smoke: aggregated pipeline end to end under -race, every run audited =="
# The aggregated scheduling path (priorities once per octant angleset on
# representative DAGs, anglesets-aware kernel) through the real CLI, with
# the independent auditor re-checking every produced schedule against
# per-direction true DAGs rebuilt from scratch (-anglesets triggers the
# wrong-octant audit in internal/verify).
go run -race ./cmd/sweepsim -mesh tetonly -scale 0.02 -k 16 -m 8 \
    -alg descendant_delays -anglesets 8 -verify -verify-every 1

echo "== weighted smoke: heterogeneous machine end to end under -race, every run audited =="
# The weighted event-driven engine (log-normal cell costs, per-processor
# speeds) through both CLIs, with the independent verify.Weighted auditor
# re-checking every produced schedule (precedence with delay gaps,
# exclusivity, speed-scaled durations, recomputed makespan).
go run -race ./cmd/sweepsim -mesh tetonly -scale 0.02 -k 8 -m 8 \
    -weights 9 -speeds 1,2,4 -verify -verify-every 1
go run -race ./cmd/sweepbench -exp weighted -scale 0.02 -procs 2,8 \
    -speeds 1,2 -verify -verify-every 1

echo "== batched-transport smoke: fault-injected solve under -race, batched default + -nobatch oracle =="
# The batched flux interconnect is the default on every communicating
# executor; the per-message oracle stays reachable behind -nobatch. Both
# runs must report the recovered flux bitwise-identical to the serial
# solve (the binary exits non-zero otherwise) with the same logical
# message count — only transmissions and modeled bytes may differ.
go run -race ./cmd/sweepsim -mesh tetonly -scale 0.02 -k 8 -m 8 \
    -faults -drop 2 -delay 1 -dup 1 -verify
go run -race ./cmd/sweepsim -mesh tetonly -scale 0.02 -k 8 -m 8 \
    -faults -drop 2 -delay 1 -dup 1 -verify -nobatch
go run -race ./cmd/sweepbench -exp comm -scale 0.02 -procs 2,8

echo "== fuzz smoke (${FUZZTIME} per target) =="
go test -run '^$' -fuzz '^FuzzFromEdges$' -fuzztime "$FUZZTIME" ./internal/dag
go test -run '^$' -fuzz '^FuzzBuildEquivalence$' -fuzztime "$FUZZTIME" ./internal/dag
go test -run '^$' -fuzz '^FuzzDecode$' -fuzztime "$FUZZTIME" ./internal/mesh
go test -run '^$' -fuzz '^FuzzDecodeTrace$' -fuzztime "$FUZZTIME" ./internal/sched
go test -run '^$' -fuzz '^FuzzFaultPlan$' -fuzztime "$FUZZTIME" ./internal/faults
go test -run '^$' -fuzz '^FuzzScheduleRequest$' -fuzztime "$FUZZTIME" ./internal/service
go test -run '^$' -fuzz '^FuzzAnglesetExpand$' -fuzztime "$FUZZTIME" ./internal/sched
go test -run '^$' -fuzz '^FuzzWeightedEquivalence$' -fuzztime "$FUZZTIME" ./internal/sched
go test -run '^$' -fuzz '^FuzzFluxBatchCodec$' -fuzztime "$FUZZTIME" ./internal/procrun

echo "ci: all green"
