package sweepsched

import "testing"

func TestScheduleWeightedFacade(t *testing.T) {
	p, err := NewProblemFromFamily("tetonly", 0.01, 8, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	weights := make(CellWeights, p.N())
	for v := range weights {
		weights[v] = int32(v%5) + 1
	}
	res, err := p.ScheduleWeighted(RandomDelaysPriority, ScheduleOptions{Seed: 2}, weights)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ratio < 1 {
		t.Fatalf("weighted ratio %v below 1", res.Ratio)
	}
	// Block variant (weight-aware partitioning).
	res2, err := p.ScheduleWeighted(Level, ScheduleOptions{Seed: 2, BlockSize: 16}, weights)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Makespan <= 0 {
		t.Fatal("empty weighted schedule")
	}
}

func TestLogNormalWeights(t *testing.T) {
	w := LogNormalWeights(5000, 4, 0.75, 9)
	if err := w.Validate(5000); err != nil {
		t.Fatal(err)
	}
	var sum int64
	distinct := map[int32]bool{}
	for _, x := range w {
		sum += int64(x)
		distinct[x] = true
	}
	mean := float64(sum) / 5000
	// Log-normal with median 4, sigma 0.75: mean ≈ 4·exp(0.75²/2)+1 ≈ 6.3.
	if mean < 4 || mean > 9 {
		t.Fatalf("mean weight %v outside plausible range", mean)
	}
	if len(distinct) < 8 {
		t.Fatalf("only %d distinct weights; distribution collapsed", len(distinct))
	}
	// Deterministic per seed.
	again := LogNormalWeights(5000, 4, 0.75, 9)
	for i := range w {
		if w[i] != again[i] {
			t.Fatalf("weights nondeterministic at %d", i)
		}
	}
}

func TestScheduleWeightedRejects(t *testing.T) {
	p, err := NewProblemFromFamily("tetonly", 0.01, 4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	weights := make(CellWeights, p.N())
	for v := range weights {
		weights[v] = 1
	}
	if _, err := p.ScheduleWeighted(RandomDelays, ScheduleOptions{}, weights); err == nil {
		t.Fatal("layered algorithm accepted weights")
	}
	if _, err := p.ScheduleWeighted(Level, ScheduleOptions{}, weights[:1]); err == nil {
		t.Fatal("short weights accepted")
	}
}

func TestScheduleWeightedUnitMatchesUnweightedMakespan(t *testing.T) {
	p, err := NewProblemFromFamily("long", 0.01, 8, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	unit, err := p.Schedule(Level, ScheduleOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	ones := make(CellWeights, p.N())
	for v := range ones {
		ones[v] = 1
	}
	weighted, err := p.ScheduleWeighted(Level, ScheduleOptions{Seed: 9}, ones)
	if err != nil {
		t.Fatal(err)
	}
	if weighted.Makespan != int64(unit.Metrics.Makespan) {
		t.Fatalf("unit weighted makespan %d != unweighted %d",
			weighted.Makespan, unit.Metrics.Makespan)
	}
}

// TestScheduleWeightedMachineFacade covers the heterogeneous facade:
// model validation at the API boundary, working Verify/VerifyEvery
// sampling (ScheduleWeighted used to silently ignore both), and the
// weighted bound terms in the result.
func TestScheduleWeightedMachineFacade(t *testing.T) {
	p, err := NewProblemFromFamily("tetonly", 0.01, 8, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	weights := LogNormalWeights(p.N(), 4, 0.75, 5)
	model := &MachineModel{Speeds: []int32{1, 2, 1, 4}, Group: []int32{0, 0, 1, 1}, IntraDelay: 1, CrossDelay: 3}

	col := NewStatsCollector()
	opts := ScheduleOptions{Seed: 2, Verify: true, VerifyEvery: 3, Collector: col}
	for i := 0; i < 6; i++ {
		res, err := p.ScheduleWeightedMachine(RandomDelaysPriority, opts, weights, model)
		if err != nil {
			t.Fatal(err)
		}
		if res.Makespan < res.Bounds.Max() {
			t.Fatalf("makespan %d below weighted bound %d", res.Makespan, res.Bounds.Max())
		}
		if res.StrongRatio < 1 || res.Ratio < res.StrongRatio {
			t.Fatalf("implausible ratios: load %v, strong %v", res.Ratio, res.StrongRatio)
		}
	}
	verified := col.Counter("api.verified").Value()
	skipped := col.Counter("api.verify_skipped").Value()
	if verified != 2 || skipped != 4 {
		t.Fatalf("every=3 over 6 weighted runs: verified=%d skipped=%d, want 2 and 4", verified, skipped)
	}

	// A model that does not fit the machine is rejected up front.
	if _, err := p.ScheduleWeightedMachine(Level, ScheduleOptions{}, weights, &MachineModel{Speeds: []int32{1}}); err == nil {
		t.Fatal("short speeds vector accepted")
	}
	if _, err := p.ScheduleWeightedMachine(Level, ScheduleOptions{}, weights,
		&MachineModel{IntraDelay: 5, CrossDelay: 1}); err == nil {
		t.Fatal("intra > cross delay accepted")
	}

	// The nil model is exactly ScheduleWeighted.
	a, err := p.ScheduleWeightedMachine(Level, ScheduleOptions{Seed: 7}, weights, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.ScheduleWeighted(Level, ScheduleOptions{Seed: 7}, weights)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan {
		t.Fatalf("nil model makespan %d != ScheduleWeighted %d", a.Makespan, b.Makespan)
	}
}
