package sweepsched

// End-to-end integration tests: every scheduler on every mesh family,
// validated analytically and replayed on the message-passing simulator.

import (
	"testing"
)

func TestIntegrationAllSchedulersAllFamilies(t *testing.T) {
	if testing.Short() {
		t.Skip("integration matrix skipped in -short mode")
	}
	for _, family := range MeshFamilies() {
		family := family
		t.Run(family, func(t *testing.T) {
			p, err := NewProblemFromFamily(family, 0.02, 8, 8, 11)
			if err != nil {
				t.Fatal(err)
			}
			for _, alg := range Schedulers() {
				res, err := p.Schedule(alg, ScheduleOptions{Seed: 13, BlockSize: 8})
				if err != nil {
					t.Fatalf("%s/%s: %v", family, alg, err)
				}
				sim, err := p.Simulate(res)
				if err != nil {
					t.Fatalf("%s/%s: simulator rejected schedule: %v", family, alg, err)
				}
				if sim.Steps != res.Metrics.Makespan {
					t.Fatalf("%s/%s: sim steps %d != makespan %d", family, alg, sim.Steps, res.Metrics.Makespan)
				}
				if sim.TotalMessages != res.Metrics.C1 || sim.CommRounds != res.Metrics.C2 {
					t.Fatalf("%s/%s: sim comm (%d,%d) != metrics (%d,%d)",
						family, alg, sim.TotalMessages, sim.CommRounds, res.Metrics.C1, res.Metrics.C2)
				}
			}
		})
	}
}

func TestIntegrationNonGeometric(t *testing.T) {
	for _, kind := range []NonGeometricKind{RandomChains, LayeredRandom, HeuristicTrap} {
		p, err := NewProblemNonGeometric(kind, 120, 6, 6, 3)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		res, err := p.Schedule(RandomDelaysPriority, ScheduleOptions{Seed: 4})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if _, err := p.Simulate(res); err != nil {
			t.Fatalf("%s: simulator: %v", kind, err)
		}
		// Block partitioning must be rejected cleanly (no mesh).
		if _, err := p.Schedule(RandomDelaysPriority, ScheduleOptions{Seed: 4, BlockSize: 8}); err == nil {
			t.Fatalf("%s: block partitioning accepted without a mesh", kind)
		}
	}
	if _, err := NewProblemNonGeometric(NonGeometricKind("bogus"), 10, 2, 2, 1); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestIntegrationSpeedupInvariant(t *testing.T) {
	// The paper's headline: Algorithm 2's makespan stays within 3·nk/m. At
	// test scale the load bound weakens at large m, so check at moderate m
	// where nk/m still dominates D.
	p, err := NewProblemFromFamily("tetonly", 0.05, 24, 16, 17)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Schedule(RandomDelaysPriority, ScheduleOptions{Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ratio > 3 {
		t.Fatalf("ratio %v exceeds the paper's 3x envelope", res.Ratio)
	}
}

func TestIntegrationCommDelayConsistency(t *testing.T) {
	p, err := NewProblemFromFamily("long", 0.02, 8, 8, 23)
	if err != nil {
		t.Fatal(err)
	}
	base, err := p.Schedule(Level, ScheduleOptions{Seed: 29})
	if err != nil {
		t.Fatal(err)
	}
	comm, err := p.ScheduleComm(Level, ScheduleOptions{Seed: 29}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if comm.Metrics.Makespan < base.Metrics.Makespan {
		t.Fatalf("comm makespan %d below base %d", comm.Metrics.Makespan, base.Metrics.Makespan)
	}
}
