package sweepsched_test

// One benchmark per paper figure/table (see the DESIGN.md per-experiment
// index). Each bench runs the corresponding experiment driver end to end —
// mesh generation, DAG induction, partitioning, scheduling, metrics — at a
// reduced mesh scale so `go test -bench=.` stays interactive. cmd/sweepbench
// runs the same drivers with table output and paper-scale knobs.

import (
	"fmt"
	"io"
	"testing"

	"sweepsched"
	"sweepsched/internal/experiments"
)

// benchConfig is the shared workload shape for the figure benchmarks.
func benchConfig() experiments.Config {
	return experiments.Config{
		Scale:  0.02,
		Seed:   1,
		Procs:  []int{2, 8, 32, 128},
		Trials: 1,
		Out:    io.Discard,
	}
}

func runExperiment(b *testing.B, name string) {
	b.Helper()
	cfg := benchConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		if err := experiments.Run(name, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2aMakespanBlocks regenerates Figure 2(a): makespan of
// random-delay scheduling under cell vs block assignment on tetonly, k=24.
func BenchmarkFig2aMakespanBlocks(b *testing.B) { runExperiment(b, "fig2a") }

// BenchmarkFig2bCommCost regenerates Figure 2(b): C1 (interprocessor
// edges) and C2 (max off-proc outdegree rounds) under cell vs block
// assignment.
func BenchmarkFig2bCommCost(b *testing.B) { runExperiment(b, "fig2b") }

// BenchmarkFig2cPriorities regenerates Figure 2(c): Random Delays vs
// Random Delays with Priorities on the long mesh across k and m.
func BenchmarkFig2cPriorities(b *testing.B) { runExperiment(b, "fig2c") }

// BenchmarkFig3aLevel regenerates Figure 3(a): level priorities with and
// without random delays (long, block 64).
func BenchmarkFig3aLevel(b *testing.B) { runExperiment(b, "fig3a") }

// BenchmarkFig3bDescendant regenerates Figure 3(b): descendant priorities
// ± random delays vs the random-delays algorithm (tetonly, block 256).
func BenchmarkFig3bDescendant(b *testing.B) { runExperiment(b, "fig3b") }

// BenchmarkFig3cDFDS regenerates Figure 3(c): DFDS priorities ± random
// delays vs the random-delays algorithm (well_logging, block 128).
func BenchmarkFig3cDFDS(b *testing.B) { runExperiment(b, "fig3c") }

// BenchmarkSpeedupTable regenerates the §5.1 scaling observation: makespan
// ≤ 3·nk/m across meshes, directions and processor counts.
func BenchmarkSpeedupTable(b *testing.B) { runExperiment(b, "speedup") }

// BenchmarkGuaranteeRatios regenerates §5.1 observation 1: observed
// approximation ratios vs the O(log²n) and O(log m logloglog m) factors.
func BenchmarkGuaranteeRatios(b *testing.B) { runExperiment(b, "guarantee") }

// BenchmarkBlockTradeoff regenerates §5.1 observation 2: the block-size
// sweep trading makespan against C1/C2.
func BenchmarkBlockTradeoff(b *testing.B) { runExperiment(b, "blocks") }

// BenchmarkImprovedRandomDelay regenerates the §4.3 comparison of
// Algorithm 1 vs Algorithm 3.
func BenchmarkImprovedRandomDelay(b *testing.B) { runExperiment(b, "improved") }

// BenchmarkKBARegular regenerates the related-work sanity check: KBA on a
// regular grid vs the randomized algorithms.
func BenchmarkKBARegular(b *testing.B) { runExperiment(b, "kba") }

// BenchmarkCommDelay regenerates the §3/§5.1 uniform communication-cost
// extension: cell vs block assignment as c grows.
func BenchmarkCommDelay(b *testing.B) { runExperiment(b, "commdelay") }

// BenchmarkNonGeometric regenerates the §2 non-geometric applicability
// study on random chains, layered DAGs, and the heuristic trap.
func BenchmarkNonGeometric(b *testing.B) { runExperiment(b, "nongeom") }

// BenchmarkColorRounds regenerates the edge-coloring realization of the C2
// communication rounds (§5 ref [11]).
func BenchmarkColorRounds(b *testing.B) { runExperiment(b, "colorrounds") }

// BenchmarkAblateDelayRange ablates the delay range R (the paper draws
// X_i from {0..k-1}; this sweeps R around k).
func BenchmarkAblateDelayRange(b *testing.B) { runExperiment(b, "ablate_delay") }

// BenchmarkAblateAssignment ablates the assignment policy (random vs
// round-robin vs slabs vs multilevel blocks).
func BenchmarkAblateAssignment(b *testing.B) { runExperiment(b, "ablate_assign") }

// BenchmarkOptRatio measures true approximation ratios against the exact
// optimum on tiny instances.
func BenchmarkOptRatio(b *testing.B) { runExperiment(b, "optratio") }

// BenchmarkAcceptance runs the machine-checkable acceptance criteria
// distilled from the paper's claims.
func BenchmarkAcceptance(b *testing.B) { runExperiment(b, "accept") }

// BenchmarkWeighted runs the heterogeneous-cell-cost extension (log-normal
// weights, weight-aware balanced partition vs random assignment).
func BenchmarkWeighted(b *testing.B) { runExperiment(b, "weighted") }

// BenchmarkIdleAnalysis quantifies the §4.2 idle time Algorithm 2's
// compaction removes from Algorithm 1's layer barriers.
func BenchmarkIdleAnalysis(b *testing.B) { runExperiment(b, "idle") }

// BenchmarkMeshCharacter tabulates the structural character of the four
// synthetic mesh families (cells, faces, DAG depth, level widths).
func BenchmarkMeshCharacter(b *testing.B) { runExperiment(b, "meshes") }

// BenchmarkPipelineEndToEnd measures the full public-API pipeline on one
// mid-size instance: mesh generation through validated schedule.
func BenchmarkPipelineEndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p, err := sweepsched.NewProblemFromFamily("tetonly", 0.05, 24, 32, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := p.Schedule(sweepsched.RandomDelaysPriority, sweepsched.ScheduleOptions{
			BlockSize: 64,
			Seed:      uint64(i + 1),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTransportSolve measures the end application: an S_N transport
// source iteration driven by a schedule (serial executor).
func BenchmarkTransportSolve(b *testing.B) {
	p, err := sweepsched.NewProblemFromFamily("tetonly", 0.03, 8, 8, 1)
	if err != nil {
		b.Fatal(err)
	}
	res, err := p.Schedule(sweepsched.RandomDelaysPriority, sweepsched.ScheduleOptions{Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	cfg := sweepsched.TransportConfig{SigmaT: 1, SigmaS: 0.5, Source: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.SolveTransport(res, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchedule sweeps the Workers knob over a k=24-direction instance
// for the scheduler whose priority stage dominates (descendant counting);
// workers=1 is the serial baseline the parallel rows are compared against.
// The schedule is bit-identical across rows (see TestTraceDeterminism);
// only wall-clock changes.
func BenchmarkSchedule(b *testing.B) {
	p, err := sweepsched.NewProblemFromFamily("tetonly", 0.05, 24, 32, 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := p.Schedule(sweepsched.Descendant, sweepsched.ScheduleOptions{
					Seed:    uint64(i + 1),
					Workers: workers,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScheduleOnly isolates scheduling cost (mesh and DAGs prebuilt).
func BenchmarkScheduleOnly(b *testing.B) {
	p, err := sweepsched.NewProblemFromFamily("tetonly", 0.05, 24, 32, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Schedule(sweepsched.RandomDelaysPriority, sweepsched.ScheduleOptions{Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
