package sweepsched

import (
	"strings"
	"testing"
)

func TestScheduleCommBasic(t *testing.T) {
	p, err := NewProblemFromFamily("tetonly", 0.01, 8, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	zero, err := p.ScheduleComm(RandomDelaysPriority, ScheduleOptions{Seed: 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	delayed, err := p.ScheduleComm(RandomDelaysPriority, ScheduleOptions{Seed: 2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if delayed.Metrics.Makespan < zero.Metrics.Makespan {
		t.Fatalf("c=4 makespan %d below c=0 makespan %d",
			delayed.Metrics.Makespan, zero.Metrics.Makespan)
	}
}

func TestScheduleCommRejectsLayered(t *testing.T) {
	p, err := NewProblemFromFamily("tetonly", 0.01, 4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.ScheduleComm(RandomDelays, ScheduleOptions{}, 1); err == nil {
		t.Fatal("layered algorithm accepted comm delays")
	}
}

func TestScheduleCommAllListSchedulers(t *testing.T) {
	p, err := NewProblemFromFamily("long", 0.01, 4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range Schedulers() {
		if alg == RandomDelays {
			continue
		}
		res, err := p.ScheduleComm(alg, ScheduleOptions{Seed: 3, BlockSize: 8}, 2)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if res.Metrics.Makespan <= 0 {
			t.Fatalf("%s: empty schedule", alg)
		}
	}
}

func TestScheduleCommUnknownScheduler(t *testing.T) {
	p, err := NewProblemFromFamily("tetonly", 0.01, 4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.ScheduleComm(Scheduler("bogus"), ScheduleOptions{}, 1); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
}

func TestResultGanttAndUtilization(t *testing.T) {
	_, res := tinyProblem(t, RandomDelaysPriority)
	var b strings.Builder
	if err := res.RenderGantt(&b, 4, 30); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "gantt:") {
		t.Fatalf("gantt output missing header:\n%s", b.String())
	}
	u := res.Utilization()
	if u <= 0 || u > 1 {
		t.Fatalf("utilization %v", u)
	}
	// Utilization must be the reciprocal of the ratio.
	if diff := u*res.Ratio - 1; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("utilization %v not reciprocal of ratio %v", u, res.Ratio)
	}
}

func TestExecutionOrderTopological(t *testing.T) {
	p, res := tinyProblem(t, Level)
	order := res.ExecutionOrder()
	if len(order) != p.Tasks() {
		t.Fatalf("order covers %d of %d tasks", len(order), p.Tasks())
	}
	pos := make(map[[2]int]int, len(order))
	for idx, task := range order {
		pos[[2]int{task.Cell, task.Dir}] = idx
	}
	for dir := 0; dir < p.K(); dir++ {
		for cell := 0; cell < p.N(); cell++ {
			for _, u := range p.Upwind(cell, dir) {
				if pos[[2]int{int(u), dir}] >= pos[[2]int{cell, dir}] {
					t.Fatalf("execution order violates upwind edge %d->%d in dir %d", u, cell, dir)
				}
			}
		}
	}
}

func TestUpwindDownwindMirror(t *testing.T) {
	p, _ := tinyProblem(t, Level)
	for dir := 0; dir < p.K(); dir++ {
		for cell := 0; cell < p.N(); cell++ {
			for _, d := range p.Downwind(cell, dir) {
				found := false
				for _, u := range p.Upwind(int(d), dir) {
					if int(u) == cell {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("downwind edge %d->%d not mirrored upwind (dir %d)", cell, d, dir)
				}
			}
		}
	}
}

func TestProcessorMatchesAssignment(t *testing.T) {
	p, res := tinyProblem(t, Level)
	for cell := 0; cell < p.N(); cell++ {
		pr := res.Processor(cell)
		if pr < 0 || pr >= p.M() {
			t.Fatalf("cell %d on processor %d", cell, pr)
		}
	}
}
