package sweepsched

import (
	"bytes"
	"testing"
)

func TestSolveTransportFacade(t *testing.T) {
	p, res := tinyProblem(t, RandomDelaysPriority)
	cfg := TransportConfig{SigmaT: 1, SigmaS: 0.5, Source: 1}
	serial, err := p.SolveTransport(res, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !serial.Converged {
		t.Fatalf("not converged: %+v", serial)
	}
	par, err := p.SolveTransportParallel(res, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for v := range serial.Phi {
		if serial.Phi[v] != par.Phi[v] {
			t.Fatalf("cell %d: serial %v != parallel %v", v, serial.Phi[v], par.Phi[v])
		}
	}
}

func TestSolveMultigroupFacade(t *testing.T) {
	p, res := tinyProblem(t, RandomDelaysPriority)
	mg, err := p.SolveMultigroup(res, MultigroupConfig{
		Groups: []GroupSpec{
			{SigmaT: 1.0, Source: 1.0},
			{SigmaT: 0.9, Source: 0.1},
		},
		Scatter: [][]float64{
			{0.2, 0.3},
			{0, 0.4},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !mg.Converged || len(mg.Phi) != 2 {
		t.Fatalf("multigroup result: converged=%v groups=%d", mg.Converged, len(mg.Phi))
	}
	for g := range mg.Phi {
		for v, f := range mg.Phi[g] {
			if f <= 0 {
				t.Fatalf("group %d cell %d flux %v", g, v, f)
			}
		}
	}
}

func TestEncodeTraceFacade(t *testing.T) {
	_, res := tinyProblem(t, Level)
	var buf bytes.Buffer
	if err := EncodeTrace(&buf, res); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty trace")
	}
}

func TestSolveTransportBadConfig(t *testing.T) {
	p, res := tinyProblem(t, Level)
	if _, err := p.SolveTransport(res, TransportConfig{SigmaT: 1, SigmaS: 2, Source: 1}); err == nil {
		t.Fatal("supercritical scattering accepted")
	}
}
